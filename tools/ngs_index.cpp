// ngs-index — build, inspect, and verify persistent spectrum indexes
// (the ngs::index on-disk format), decoupling pass-1 k-spectrum
// construction from correction runs the way RECKONER decouples its KMC
// database build:
//
//   ngs-index build  --in reads.fastq --out spectrum.ngsx
//                    --k 12 --both-strands 1 --threads 8
//   ngs-index info   --index spectrum.ngsx
//   ngs-index verify --index spectrum.ngsx
//
// `build` streams the FASTQ through the bounded-memory chunked builder
// (never materializing the read set) and writes atomically; `info`
// prints the header/provenance without touching payload pages; `verify`
// recomputes every checksum and validates the spectrum invariants,
// exiting non-zero with a distinct message per corruption mode.
//
// A saved index feeds `ngs-correct --load-index`, which mmaps it and
// skips pass 1 entirely.
//
// Exit codes: 0 success, 2 usage/config error, 3 input open/parse
// error, 4 index error (including verify failures), 1 internal error.

#include <cstdio>
#include <exception>
#include <iostream>
#include <optional>
#include <string>

#include "fault/fault.hpp"
#include "index/spectrum_index.hpp"
#include "io/fastq_stream.hpp"
#include "kspec/chunked_builder.hpp"
#include "seq/kmer.hpp"
#include "seq/read.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace ngs;

namespace {

void print_usage(std::ostream& os) {
  os << "ngs-index — persistent k-spectrum index tool\n"
     << "usage: ngs-index <build|info|verify> [options]\n\n"
     << "  build  --in reads.fastq --out index.ngsx [--k N]\n"
     << "         [--both-strands 0|1] [--threads N] [--batch-size N]\n"
     << "         [--memory-budget-mb N] [--spill-dir DIR]\n"
     << "  info   --index index.ngsx [--json]\n"
     << "  verify --index index.ngsx\n";
}

const char* section_label(index::SectionId id) {
  switch (id) {
    case index::SectionId::kCodes: return "codes";
    case index::SectionId::kCounts: return "counts";
    case index::SectionId::kBucketStarts: return "bucket_starts";
    case index::SectionId::kShardTable: return "shard_table";
  }
  return "unknown";
}

void print_info(const index::IndexInfo& info, const std::string& path) {
  std::cout << "index: " << path << "\n"
            << "  format_version: " << info.format_version << "\n"
            << "  k: " << info.build.k << "\n"
            << "  both_strands: " << (info.build.both_strands ? 1 : 0) << "\n"
            << "  distinct_kmers: " << info.distinct << "\n"
            << "  total_instances: " << info.total_instances << "\n"
            << "  prefix_bits: " << info.prefix_bits << "\n"
            << "  input_reads: " << info.build.input_reads << "\n"
            << "  input_bases: " << info.build.input_bases << "\n"
            << "  max_read_length: " << info.build.max_read_length << "\n"
            << "  file_bytes: " << info.file_bytes << "\n"
            << "  checksum: 0x" << std::hex << info.checksum << std::dec
            << "\n";
  if (info.shard_count > 0) {
    std::cout << "  shard_count: " << info.shard_count << "\n"
              << "  shard_bits: " << info.shard_bits << "\n"
              << "  shards:\n";
    const int shift = 2 * info.build.k - static_cast<int>(info.shard_bits);
    for (const auto& shard : info.shards) {
      // Per-shard section rows (bytes + checksum), matched by prefix.
      std::cout << "    prefix=" << shard.prefix << " key_range=["
                << (static_cast<std::uint64_t>(shard.prefix) << shift) << ", "
                << (static_cast<std::uint64_t>(shard.prefix + 1) << shift)
                << ") entries=" << shard.distinct
                << " instances=" << shard.total_instances
                << " prefix_index_bits=" << shard.prefix_index_bits << "\n";
      for (const auto& s : info.sections) {
        if (s.shard_prefix != shard.prefix ||
            s.id == index::SectionId::kShardTable) {
          continue;
        }
        std::cout << "      " << section_label(s.id) << ": offset="
                  << s.offset << " bytes=" << s.bytes << " checksum=0x"
                  << std::hex << s.checksum << std::dec << "\n";
      }
    }
  }
  std::cout << "  sections:\n";
  for (const auto& s : info.sections) {
    std::cout << "    " << section_label(s.id);
    if (info.shard_count > 0 &&
        s.id != index::SectionId::kShardTable) {
      std::cout << "[shard " << s.shard_prefix << "]";
    }
    std::cout << ": offset=" << s.offset << " bytes=" << s.bytes
              << " checksum=0x" << std::hex << s.checksum << std::dec
              << "\n";
  }
}

/// Machine-readable `info --json`: one JSON object with the header
/// fields, the per-shard summaries, and every section's extent and
/// checksum. Checksums are emitted as hex strings (they exceed the
/// interoperable 2^53 integer range); everything else is a number.
void print_info_json(const index::IndexInfo& info, const std::string& path) {
  const auto hex = [](std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
  };
  const auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  std::cout << "{\n"
            << "  \"path\": \"" << escape(path) << "\",\n"
            << "  \"format_version\": " << info.format_version << ",\n"
            << "  \"k\": " << info.build.k << ",\n"
            << "  \"both_strands\": "
            << (info.build.both_strands ? "true" : "false") << ",\n"
            << "  \"distinct_kmers\": " << info.distinct << ",\n"
            << "  \"total_instances\": " << info.total_instances << ",\n"
            << "  \"prefix_bits\": " << info.prefix_bits << ",\n"
            << "  \"input_reads\": " << info.build.input_reads << ",\n"
            << "  \"input_bases\": " << info.build.input_bases << ",\n"
            << "  \"max_read_length\": " << info.build.max_read_length
            << ",\n"
            << "  \"file_bytes\": " << info.file_bytes << ",\n"
            << "  \"checksum\": \"" << hex(info.checksum) << "\",\n"
            << "  \"shard_count\": " << info.shard_count << ",\n"
            << "  \"shard_bits\": " << info.shard_bits << ",\n"
            << "  \"shards\": [";
  for (std::size_t i = 0; i < info.shards.size(); ++i) {
    const auto& shard = info.shards[i];
    std::cout << (i == 0 ? "\n" : ",\n")
              << "    {\"prefix\": " << shard.prefix
              << ", \"entries\": " << shard.distinct
              << ", \"instances\": " << shard.total_instances
              << ", \"prefix_index_bits\": " << shard.prefix_index_bits
              << "}";
  }
  std::cout << (info.shards.empty() ? "],\n" : "\n  ],\n")
            << "  \"sections\": [";
  for (std::size_t i = 0; i < info.sections.size(); ++i) {
    const auto& s = info.sections[i];
    std::cout << (i == 0 ? "\n" : ",\n")
              << "    {\"id\": \"" << section_label(s.id) << "\""
              << ", \"shard_prefix\": " << s.shard_prefix
              << ", \"offset\": " << s.offset << ", \"bytes\": " << s.bytes
              << ", \"checksum\": \"" << hex(s.checksum) << "\"}";
  }
  std::cout << (info.sections.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

int run_build(util::CliParser& cli) {
  const std::string in = cli.get("in");
  const std::string out = cli.get("out");
  if (in.empty() || out.empty()) {
    std::cerr << "ngs-index build: --in and --out are required\n"
              << cli.usage();
    return 2;
  }
  const int k = static_cast<int>(cli.get_int("k", 12));
  const bool both_strands = cli.get_int("both-strands", 1) != 0;
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const auto batch_size =
      static_cast<std::size_t>(cli.get_int("batch-size", 4096));
  const auto budget_mb =
      static_cast<std::size_t>(cli.get_int("memory-budget-mb", 0));
  if (k < 1 || k > seq::kMaxK) {
    std::cerr << "ngs-index build: --k must be in [1, " << seq::kMaxK
              << "]\n";
    return 2;
  }

  util::Timer timer;
  std::optional<util::ThreadPool> own_pool;
  if (threads > 0) own_pool.emplace(threads);
  kspec::SpillOptions spill;
  spill.memory_budget_bytes = budget_mb << 20;
  spill.spill_dir = cli.get("spill-dir");
  kspec::ChunkedSpectrumBuilder builder(
      k, both_strands, 1 << 20, own_pool ? &*own_pool : nullptr, spill);
  index::IndexBuildInfo build;
  build.k = k;
  build.both_strands = both_strands;
  {
    io::FastqStreamReader reader(in);
    std::vector<seq::Read> batch;
    while (reader.read_batch(batch, batch_size) > 0) {
      for (const auto& r : batch) {
        builder.add_read(r.bases);
        ++build.input_reads;
        build.input_bases += r.bases.size();
        if (r.bases.size() > build.max_read_length) {
          build.max_read_length = static_cast<std::uint32_t>(r.bases.size());
        }
      }
      batch.clear();
    }
  }
  std::uint64_t distinct = 0;
  std::uint64_t instances = 0;
  std::uint64_t checksum = 0;
  std::size_t shards = 0;
  util::Timer write_timer;
  double build_s = 0.0;
  if (builder.spilled()) builder.flush_spill();
  if (builder.spilled() && builder.spill_nonempty_bins() > 1) {
    // Out-of-core: stream sorted prefix bins straight into the sharded
    // file; the full spectrum never exists in this process.
    shards = builder.spill_nonempty_bins();
    build_s = timer.seconds();
    write_timer = util::Timer();
    index::ShardedIndexWriter writer(out, build, builder.spill_shard_bits(),
                                     shards);
    builder.finish_spilled(
        [&](kspec::ChunkedSpectrumBuilder::SortedRun&& run) {
          distinct += run.codes.size();
          for (const auto c : run.counts) instances += c;
          writer.append_shard(run.prefix, std::move(run.codes),
                              std::move(run.counts));
        });
    checksum = writer.finish();
  } else {
    const auto spectrum = builder.finish();
    distinct = spectrum.size();
    instances = spectrum.total_instances();
    build_s = timer.seconds();
    write_timer = util::Timer();
    checksum = index::write_spectrum_index(out, spectrum, build);
  }
  std::cerr << "built k=" << k << " spectrum of " << distinct
            << " distinct kmers (" << instances << " instances) from "
            << build.input_reads << " reads in " << build_s << "s\n";
  if (shards > 0) {
    std::cerr << "spilled " << builder.spill_bytes() << " bytes into "
              << shards << " prefix shards (peak tracked memory "
              << builder.peak_tracked_bytes() << " bytes)\n";
  }
  std::cerr << "wrote " << out << " (checksum 0x" << std::hex << checksum
            << std::dec << ") in " << write_timer.seconds() << "s\n";
  return 0;
}

int run_info(util::CliParser& cli) {
  const std::string path = cli.get("index");
  if (path.empty()) {
    std::cerr << "ngs-index info: --index is required\n" << cli.usage();
    return 2;
  }
  const auto info = index::SpectrumIndex::read_info(path);
  if (cli.has("json")) {
    print_info_json(info, path);
  } else {
    print_info(info, path);
  }
  return 0;
}

int run_verify(util::CliParser& cli) {
  const std::string path = cli.get("index");
  if (path.empty()) {
    std::cerr << "ngs-index verify: --index is required\n" << cli.usage();
    return 2;
  }
  util::Timer timer;
  index::LoadOptions options;
  options.verify_checksums = true;
  options.validate_payload = true;
  const auto index = index::SpectrumIndex::load(path, options);
  std::cerr << "ok: " << path << " (" << index.info().distinct
            << " distinct kmers, checksum 0x" << std::hex
            << index.info().checksum << std::dec << ", "
            << (index.info().mapped ? "mmap" : "owned buffer") << ", verified in "
            << timer.seconds() << "s)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  const std::string subcommand = argv[1];
  if (subcommand == "--help" || subcommand == "help") {
    print_usage(std::cout);
    return 0;
  }

  util::CliParser cli("ngs-index " + subcommand,
                      "persistent k-spectrum index tool");
  if (subcommand == "build") {
    cli.add_option("in", "input FASTQ", true, "");
    cli.add_option("out", "output index path", true, "");
    cli.add_option("k", "kmer length", true, "12");
    cli.add_option("both-strands",
                   "include reverse-complement strands (1) or not (0)", true,
                   "1");
    cli.add_option("threads", "spectrum build threads (0 = all cores)", true,
                   "0");
    cli.add_option("batch-size", "reads per streamed parse batch", true,
                   "4096");
    cli.add_option("memory-budget-mb",
                   "bound the build's own memory to N MiB, spilling the "
                   "spectrum to sharded disk bins (0 = unlimited)",
                   true, "0");
    cli.add_option("spill-dir",
                   "directory for spill bins under --memory-budget-mb "
                   "(default: system temp dir)",
                   true, "");
    cli.add_option("fault-spec",
                   "fault-injection spec (also read from NGS_FAULT_SPEC; "
                   "testing only)",
                   true, "");
  } else if (subcommand == "info" || subcommand == "verify") {
    cli.add_option("index", "index file to inspect", true, "");
    if (subcommand == "info") {
      cli.add_option("json",
                     "emit the header/section/shard dump as JSON on stdout",
                     false);
    }
    cli.add_option("fault-spec",
                   "fault-injection spec (also read from NGS_FAULT_SPEC; "
                   "testing only)",
                   true, "");
  } else {
    std::cerr << "ngs-index: unknown subcommand '" << subcommand << "'\n";
    print_usage(std::cerr);
    return 2;
  }
  if (!cli.parse(argc - 1, argv + 1)) {
    std::cerr << cli.error() << "\n" << cli.usage();
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }

  try {
    fault::Registry::instance().configure_from_env();
    if (!cli.get("fault-spec").empty()) {
      fault::Registry::instance().configure(cli.get("fault-spec"));
    }
  } catch (const Error& e) {
    std::cerr << "ngs-index " << subcommand << ": " << e.what() << "\n";
    return tool_exit_code(e.kind());
  }

  try {
    if (subcommand == "build") return run_build(cli);
    if (subcommand == "info") return run_info(cli);
    return run_verify(cli);
  } catch (const Error& e) {
    // IndexError derives from Error with kind kIndex, so corrupt or
    // missing indexes land on exit code 4; input open/parse on 3.
    std::cerr << "ngs-index " << subcommand << ": " << e.what() << "\n";
    return tool_exit_code(e.kind());
  } catch (const std::invalid_argument& e) {
    std::cerr << "ngs-index " << subcommand << ": " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "ngs-index " << subcommand << ": internal error: " << e.what()
              << "\n";
    return 1;
  }
}
