// ngs-correct — correct sequencing errors in a FASTQ with any of the
// implemented methods.
//
//   ngs-correct --in reads.fastq --out corrected.fastq \\
//               --method reptile --genome-length 100000
//
// Methods: reptile (default), shrec, sap, hitec, freclu, redeem, hybrid.
// REDEEM and hybrid need an error-rate estimate for their misread model
// (use ngs-simulate's value, or a control-lane estimate).

#include <iostream>

#include "baselines/freclu.hpp"
#include "baselines/hitec.hpp"
#include "baselines/sap.hpp"
#include "io/fastx.hpp"
#include "kspec/kspectrum.hpp"
#include "redeem/corrector.hpp"
#include "redeem/em_model.hpp"
#include "redeem/error_dist.hpp"
#include "redeem/hybrid.hpp"
#include "reptile/corrector.hpp"
#include "shrec/shrec.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace ngs;

int main(int argc, char** argv) {
  util::CliParser cli("ngs-correct", "short-read error correction");
  cli.add_option("in", "input FASTQ", true, "");
  cli.add_option("out", "output FASTQ", true, "corrected.fastq");
  cli.add_option("method",
                 "reptile | shrec | sap | hitec | freclu | redeem | hybrid",
                 true, "reptile");
  cli.add_option("genome-length", "genome length estimate (bp)", true,
                 "1000000");
  cli.add_option("k", "kmer length (0 = choose from genome length)", true,
                 "0");
  cli.add_option("error-rate", "error-rate estimate for redeem/hybrid", true,
                 "0.01");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage();
    return 2;
  }
  if (cli.help_requested() || cli.get("in").empty()) {
    std::cout << cli.usage();
    return cli.help_requested() ? 0 : 2;
  }

  const auto reads = io::read_fastq_file(cli.get("in"));
  const auto genome_length =
      static_cast<std::uint64_t>(cli.get_int("genome-length", 1000000));
  const std::string method = cli.get("method", "reptile");
  std::cerr << "read " << reads.size() << " reads; method=" << method << "\n";

  util::Timer timer;
  std::vector<seq::Read> corrected;
  if (method == "reptile" || method == "hybrid") {
    auto params = reptile::select_parameters(reads, genome_length);
    if (cli.get_int("k", 0) > 0) {
      params.k = static_cast<int>(cli.get_int("k", 0));
    }
    if (method == "reptile") {
      reptile::ReptileCorrector corrector(reads, params);
      reptile::CorrectionStats stats;
      corrected = corrector.correct_all(reads, stats);
      std::cerr << "changed " << stats.bases_changed << " bases\n";
    } else {
      redeem::HybridParams hp;
      hp.reptile = params;
      std::size_t max_len = 0;
      for (const auto& r : reads.reads) max_len = std::max(max_len, r.length());
      const auto model = sim::ErrorModel::illumina(
          max_len, cli.get_double("error-rate", 0.01));
      const auto q = redeem::kmer_error_matrices(
          redeem::ErrorDistKind::kTrueIllumina, hp.redeem_k, model);
      redeem::HybridCorrector corrector(q, hp);
      redeem::HybridStats stats;
      corrected = corrector.correct_all(reads, stats);
      std::cerr << "changed " << stats.redeem.bases_changed << " (REDEEM) + "
                << stats.reptile.bases_changed << " (Reptile) bases\n";
    }
  } else if (method == "shrec") {
    shrec::ShrecParams params;
    params.genome_length = genome_length;
    shrec::ShrecCorrector corrector(params);
    shrec::ShrecStats stats;
    corrected = corrector.correct_all(reads, stats);
    std::cerr << "applied " << stats.corrections_applied << " corrections\n";
  } else if (method == "sap") {
    baselines::SapParams params;
    if (cli.get_int("k", 0) > 0) params.k = static_cast<int>(cli.get_int("k", 0));
    baselines::SapCorrector corrector(reads, params);
    baselines::SapStats stats;
    corrected = corrector.correct_all(reads, stats);
    std::cerr << "fixed " << stats.reads_fixed << " reads ("
              << stats.reads_unfixable << " unfixable)\n";
  } else if (method == "hitec") {
    baselines::HitecParams params;
    if (cli.get_int("k", 0) > 0) params.k = static_cast<int>(cli.get_int("k", 0));
    baselines::HitecCorrector corrector(reads, params);
    baselines::HitecStats stats;
    corrected = corrector.correct_all(reads, stats);
    std::cerr << "applied " << stats.corrections << " corrections\n";
  } else if (method == "freclu") {
    baselines::FrecluCorrector corrector({});
    baselines::FrecluStats stats;
    corrected = corrector.correct_all(reads, stats);
    std::cerr << "corrected " << stats.reads_corrected << " reads across "
              << stats.trees << " trees\n";
  } else if (method == "redeem") {
    std::size_t max_len = 0;
    for (const auto& r : reads.reads) max_len = std::max(max_len, r.length());
    const int k = cli.get_int("k", 0) > 0
                      ? static_cast<int>(cli.get_int("k", 0))
                      : 11;
    const auto model = sim::ErrorModel::illumina(
        max_len, cli.get_double("error-rate", 0.01));
    const auto q = redeem::kmer_error_matrices(
        redeem::ErrorDistKind::kTrueIllumina, k, model);
    const auto spectrum = kspec::KSpectrum::build(reads, k, false);
    const redeem::RedeemModel em(spectrum, q, {});
    redeem::RedeemCorrector corrector(em, {});
    redeem::RedeemCorrectionStats stats;
    corrected = corrector.correct_all(reads, stats);
    std::cerr << "changed " << stats.bases_changed << " bases ("
              << stats.reads_flagged << " reads flagged)\n";
  } else {
    std::cerr << "unknown method: " << method << "\n" << cli.usage();
    return 2;
  }

  seq::ReadSet out;
  out.reads = std::move(corrected);
  io::write_fastq_file(cli.get("out"), out);
  std::cerr << "wrote " << cli.get("out") << " in " << timer.seconds()
            << "s\n";
  return 0;
}
