// ngs-correct — correct sequencing errors in a FASTQ with any of the
// registered methods, through the two-pass streaming correction
// pipeline (bounded read buffering for spectrum-based methods, parallel
// batch correction, order-preserving batched writes).
//
//   ngs-correct --in reads.fastq --out corrected.fastq \\
//               --method reptile --genome-length 100000 \\
//               --threads 8 --batch-size 4096
//
//   ngs-correct --method list       # discover registered methods
//
// Method dispatch lives entirely in core::make_corrector; this tool
// never names an individual method.
//
// Exit codes: 0 success, 2 usage/config error, 3 input open/parse
// error, 4 index error, 1 internal error.

#include <exception>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/registry.hpp"
#include "fault/fault.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

using namespace ngs;

int main(int argc, char** argv) {
  util::CliParser cli("ngs-correct", "short-read error correction");
  cli.add_option("in", "input FASTQ", true, "");
  cli.add_option("out", "output FASTQ", true, "corrected.fastq");
  cli.add_option("method", "correction method (use 'list' to enumerate)",
                 true, "reptile");
  cli.add_option("genome-length", "genome length estimate (bp)", true,
                 "1000000");
  cli.add_option("k", "kmer length (0 = choose from genome length)", true,
                 "0");
  cli.add_option("error-rate", "error-rate estimate for redeem/hybrid", true,
                 "0.01");
  cli.add_option("threads", "correction worker threads (0 = all cores)", true,
                 "0");
  cli.add_option("spectrum-threads",
                 "pass-1 spectrum build threads (0 = share correction pool)",
                 true, "0");
  cli.add_option("batch-size", "reads per streamed batch", true, "4096");
  cli.add_option("io-overlap",
                 "overlap file I/O with compute: on (dedicated reader + "
                 "in-order writer around the correction workers) or off "
                 "(serial stop-and-go loops; output is byte-identical)",
                 true, "on");
  cli.add_option("queue-depth",
                 "bounded read-ahead of the overlapped pipeline, in "
                 "batches (>= 1)",
                 true, "4");
  cli.add_option("tile-cache-mb",
                 "shared pass-2 tile-decision cache budget in MiB "
                 "(0 = disable memoization)",
                 true, "32");
  cli.add_option("load-index",
                 "mmap a persisted spectrum index (see ngs-index) instead "
                 "of building pass 1 (streaming methods only)",
                 true, "");
  cli.add_option("save-index",
                 "persist the pass-1 spectrum to this path for future "
                 "--load-index runs (streaming methods only)",
                 true, "");
  cli.add_option("memory-budget-mb",
                 "bound the pass-1 spectrum build's own memory to N MiB, "
                 "spilling to sharded disk bins; output is byte-identical "
                 "(0 = unlimited; streaming methods only)",
                 true, "0");
  cli.add_option("spill-dir",
                 "directory for spill bins and the transient sharded index "
                 "under --memory-budget-mb (default: system temp dir)",
                 true, "");
  cli.add_option("on-bad-record",
                 "malformed-FASTQ policy: fail (abort with a located "
                 "parse error) or skip (drop and count)",
                 true, "fail");
  cli.add_option("fault-spec",
                 "fault-injection spec, e.g. 'io.fastq.open=n2,seed=7' "
                 "(also read from NGS_FAULT_SPEC; testing only)",
                 true, "");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage();
    return 2;
  }
  const std::string method_name = cli.get("method", "reptile");
  if (method_name == "list") {
    for (const auto& info : core::registered_methods()) {
      std::cout << info.name << '\t'
                << (info.streaming ? "streaming" : "buffered") << '\t'
                << info.description << '\n';
    }
    return 0;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }
  if (cli.get("in").empty()) {
    std::cerr << "ngs-correct: --in is required\n" << cli.usage();
    return 2;
  }

  // Arm the fault registry before any I/O: env first, then the flag
  // (the flag augments/overrides the env spec site by site).
  try {
    fault::Registry::instance().configure_from_env();
    if (!cli.get("fault-spec").empty()) {
      fault::Registry::instance().configure(cli.get("fault-spec"));
    }
  } catch (const Error& e) {
    std::cerr << "ngs-correct: " << e.what() << "\n";
    return tool_exit_code(e.kind());
  }

  io::BadRecordPolicy bad_record_policy = io::BadRecordPolicy::kFail;
  const std::string on_bad_record = cli.get("on-bad-record", "fail");
  if (on_bad_record == "skip") {
    bad_record_policy = io::BadRecordPolicy::kSkip;
  } else if (on_bad_record != "fail") {
    std::cerr << "ngs-correct: --on-bad-record must be 'fail' or 'skip', got '"
              << on_bad_record << "'\n";
    return 2;
  }

  bool io_overlap = true;
  const std::string io_overlap_arg = cli.get("io-overlap", "on");
  if (io_overlap_arg == "off") {
    io_overlap = false;
  } else if (io_overlap_arg != "on") {
    std::cerr << "ngs-correct: --io-overlap must be 'on' or 'off', got '"
              << io_overlap_arg << "'\n";
    return 2;
  }
  const long queue_depth = cli.get_int("queue-depth", 4);
  if (queue_depth < 1) {
    std::cerr << "ngs-correct: --queue-depth must be >= 1, got "
              << queue_depth << "\n";
    return 2;
  }

  core::CorrectorConfig config;
  config.genome_length =
      static_cast<std::uint64_t>(cli.get_int("genome-length", 1000000));
  config.k = static_cast<int>(cli.get_int("k", 0));
  config.error_rate = cli.get_double("error-rate", 0.01);
  config.tile_cache_mb =
      static_cast<std::size_t>(cli.get_int("tile-cache-mb", 32));

  std::unique_ptr<core::Corrector> corrector;
  try {
    corrector = core::make_corrector(method_name, config);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n" << cli.usage();
    return 2;
  }

  core::PipelineOptions options;
  options.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  options.spectrum_threads =
      static_cast<std::size_t>(cli.get_int("spectrum-threads", 0));
  options.batch_size =
      static_cast<std::size_t>(cli.get_int("batch-size", 4096));
  options.io_overlap = io_overlap;
  options.queue_depth = static_cast<std::size_t>(queue_depth);
  options.load_index_path = cli.get("load-index");
  options.save_index_path = cli.get("save-index");
  options.memory_budget_bytes =
      static_cast<std::size_t>(cli.get_int("memory-budget-mb", 0)) << 20;
  options.spill_dir = cli.get("spill-dir");
  options.on_bad_record = bad_record_policy;
  core::CorrectionPipeline pipeline(std::move(corrector), options);

  util::Timer timer;
  core::PipelineResult result;
  try {
    result = pipeline.run_file(cli.get("in"), cli.get("out"));
  } catch (const Error& e) {
    std::cerr << "ngs-correct: " << e.what() << "\n";
    return tool_exit_code(e.kind());
  } catch (const std::invalid_argument& e) {
    std::cerr << "ngs-correct: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "ngs-correct: internal error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "method=" << method_name
            << (result.streamed ? " (streamed spectrum)" : " (buffered)")
            << ": " << result.report.summary() << "\n";
  // Index provenance, formatted like the tile-cache extras below: one
  // stderr line keyed off the standardized report extras.
  if (result.report.extra("pass1_skipped") +
          result.report.extra("index_saved") >
      0) {
    std::cerr << "index: " << result.report.note_or("index_path")
              << " (checksum " << result.report.note_or("index_checksum")
              << ", pass 1 "
              << (result.pass1_skipped ? "skipped — spectrum mmap-loaded"
                                       : "built and saved")
              << ")\n";
  }
  const std::uint64_t cache_hits = result.report.extra("tile_cache_hits");
  const std::uint64_t cache_misses = result.report.extra("tile_cache_misses");
  if (cache_hits + cache_misses > 0) {
    std::cerr << "tile cache: "
              << 100.0 * static_cast<double>(cache_hits) /
                     static_cast<double>(cache_hits + cache_misses)
              << "% hit rate, pass 2 "
              << result.report.extra("pass2_reads_per_sec") << " reads/s\n";
  }
  if (result.spectrum_spilled) {
    std::cerr << "spill: pass 1 stayed under "
              << cli.get_int("memory-budget-mb", 0) << " MiB (peak tracked "
              << result.spectrum_peak_tracked_bytes << " bytes), "
              << result.spectrum_spilled_bytes << " bytes spilled";
    if (result.spectrum_shards > 0) {
      std::cerr << ", pass 2 queried " << result.spectrum_shards
                << " index shards";
    }
    std::cerr << "\n";
  }
  if (result.overlapped) {
    const auto& s2 = result.pass2_overlap;
    std::cerr << "overlap: queue depth "
              << result.report.extra("queue_depth") << ", pass 2 "
              << result.report.extra("pass2_worker_util_pct")
              << "% worker utilization (reader stall "
              << result.report.extra("pass2_reader_stall_ms")
              << " ms, writer stall "
              << result.report.extra("pass2_writer_stall_ms")
              << " ms, queue peak " << s2.queue_peak << "/"
              << result.report.extra("queue_depth") << ", reorder peak "
              << s2.reorder_peak << ")\n";
  }
  // Degradation report: anything the run survived rather than failed.
  if (result.reads_skipped + result.reads_failed + result.io_retries > 0) {
    std::cerr << "degraded: " << result.reads_skipped
              << " malformed records skipped, " << result.reads_failed
              << " reads passed through uncorrected, " << result.io_retries
              << " transient I/O retries\n";
  }
  if (fault::Registry::instance().enabled()) {
    std::cerr << "fault injection: " << fault::Registry::instance().summary()
              << "\n";
  }
  std::cerr << "wrote " << cli.get("out") << " in " << timer.seconds()
            << "s (" << result.batches << " batches, peak "
            << result.peak_buffered_reads << " buffered reads, peak rss "
            << util::to_gib(result.peak_rss_bytes) << " GiB)\n";
  return 0;
}
