#include <gtest/gtest.h>

#include "eval/correction_metrics.hpp"
#include "reptile/corrector.hpp"
#include "reptile/params.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;

struct SimSetup {
  std::string genome;
  sim::SimulatedReads sim;
};

SimSetup make_setup(std::size_t genome_len, double coverage, double err,
                    std::uint64_t seed, double ambiguous_rate = 0.0) {
  util::Rng rng(seed);
  sim::GenomeSpec gspec;
  gspec.length = genome_len;
  SimSetup s;
  s.genome = sim::simulate_genome(gspec, rng).sequence;
  const auto model = sim::ErrorModel::illumina(36, err);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = coverage;
  cfg.ambiguous_rate = ambiguous_rate;
  s.sim = sim::simulate_reads(s.genome, model, cfg, rng);
  return s;
}

reptile::ReptileParams small_params() {
  reptile::ReptileParams p;
  p.k = 10;
  p.d = 1;
  p.c_good = 8;
  p.c_min = 3;
  p.quality_cutoff = 15;
  return p;
}

TEST(ReptileParams, TileLengthAndDefaults) {
  reptile::ReptileParams p;
  p.k = 12;
  p.overlap = 2;
  EXPECT_EQ(p.tile_length(), 22);
  EXPECT_EQ(p.effective_ambig_window(), 12);
  EXPECT_EQ(p.effective_ambig_max(), p.d);
}

TEST(ReptileParams, SelectionFromData) {
  const auto setup = make_setup(20000, 40.0, 0.01, 7);
  const auto p = reptile::select_parameters(setup.sim.reads, 20000);
  // k = ceil(log4 20000) = 8 -> clamped to 10.
  EXPECT_EQ(p.k, 10);
  EXPECT_GT(p.quality_cutoff, 0);
  EXPECT_GT(p.c_good, p.c_min);
  EXPECT_GE(p.c_min, 2u);
}

TEST(ReptileCorrector, CorrectsMostErrorsAtHighCoverage) {
  const auto setup = make_setup(20000, 60.0, 0.008, 11);
  reptile::ReptileCorrector corrector(setup.sim.reads, small_params());
  reptile::CorrectionStats stats;
  const auto corrected = corrector.correct_all(setup.sim.reads, stats);
  const auto metrics = eval::evaluate_correction(setup.sim.reads, corrected);
  EXPECT_GT(metrics.gain(), 0.5) << "TP=" << metrics.tp << " FP=" << metrics.fp
                                 << " FN=" << metrics.fn;
  EXPECT_GT(metrics.sensitivity(), 0.5);
  EXPECT_GT(metrics.specificity(), 0.995);
  EXPECT_LT(metrics.eba(), 0.1);
  EXPECT_EQ(stats.reads, setup.sim.reads.size());
}

TEST(ReptileCorrector, ErrorFreeDataIsLeftAlmostUntouched) {
  const auto setup = make_setup(20000, 50.0, 0.000001, 13);
  reptile::ReptileCorrector corrector(setup.sim.reads, small_params());
  reptile::CorrectionStats stats;
  const auto corrected = corrector.correct_all(setup.sim.reads, stats);
  const auto metrics = eval::evaluate_correction(setup.sim.reads, corrected);
  // Specificity must stay essentially perfect on clean data.
  EXPECT_GT(metrics.specificity(), 0.9999);
}

TEST(ReptileCorrector, HandlesReadsShorterThanTile) {
  const auto setup = make_setup(5000, 10.0, 0.01, 17);
  reptile::ReptileCorrector corrector(setup.sim.reads, small_params());
  reptile::CorrectionStats stats;
  seq::Read tiny{"t", "ACGTACGT", {}};
  const auto out = corrector.correct(tiny, stats);
  EXPECT_EQ(out.bases, tiny.bases);  // shorter than a tile: untouched
}

TEST(ReptileCorrector, ConvertsEligibleAmbiguousBases) {
  const auto setup = make_setup(20000, 60.0, 0.005, 19, /*ambiguous=*/0.002);
  reptile::ReptileCorrector corrector(setup.sim.reads, small_params());
  reptile::CorrectionStats stats;
  const auto corrected = corrector.correct_all(setup.sim.reads, stats);
  EXPECT_GT(stats.ambiguous_converted, 0u);
  const auto ambig = eval::evaluate_ambiguous(setup.sim.reads, corrected);
  ASSERT_GT(ambig.total_n, 0u);
  // Most isolated N's should resolve to the true base.
  EXPECT_GT(ambig.accuracy(), 0.6);
}

TEST(ReptileCorrector, DenseAmbiguousRegionsAreNotConverted) {
  const auto setup = make_setup(10000, 30.0, 0.005, 23);
  auto params = small_params();
  reptile::ReptileCorrector corrector(setup.sim.reads, params);
  reptile::CorrectionStats stats;
  // A read drowning in N's: density constraint must leave them be.
  seq::Read bad{"bad", "NNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNN", {}};
  const auto out = corrector.correct(bad, stats);
  EXPECT_EQ(out.bases, bad.bases);
}

TEST(ReptileCorrector, HigherDFindsMoreErrors) {
  const auto setup = make_setup(15000, 80.0, 0.02, 29);
  auto p1 = small_params();
  auto p2 = small_params();
  p2.d = 2;
  reptile::ReptileCorrector c1(setup.sim.reads, p1);
  reptile::ReptileCorrector c2(setup.sim.reads, p2);
  reptile::CorrectionStats s1, s2;
  const auto out1 = c1.correct_all(setup.sim.reads, s1);
  const auto out2 = c2.correct_all(setup.sim.reads, s2);
  const auto m1 = eval::evaluate_correction(setup.sim.reads, out1);
  const auto m2 = eval::evaluate_correction(setup.sim.reads, out2);
  // The d=2 search space can only find at least as many true errors
  // (allow small slack for interaction effects).
  EXPECT_GE(m2.tp + 50, m1.tp);
}

TEST(ReptileCorrector, DeterministicAcrossRuns) {
  const auto setup = make_setup(10000, 40.0, 0.01, 31);
  reptile::ReptileCorrector corrector(setup.sim.reads, small_params());
  reptile::CorrectionStats s1, s2;
  const auto a = corrector.correct_all(setup.sim.reads, s1);
  const auto b = corrector.correct_all(setup.sim.reads, s2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].bases, b[i].bases);
  }
}

TEST(ReptileCorrector, CachedDecisionsMatchUncachedByteForByte) {
  const auto setup = make_setup(15000, 50.0, 0.015, 37);
  reptile::ReptileCorrector corrector(setup.sim.reads, small_params());
  ASSERT_TRUE(corrector.cacheable());
  reptile::TileDecisionCache cache(1 << 20);  // small: forces evictions
  reptile::CorrectionStats su, sc;
  reptile::ReptileCorrector::Scratch scratch_u, scratch_c;
  for (const auto& read : setup.sim.reads.reads) {
    const auto uncached = corrector.correct(read, su, scratch_u, nullptr);
    const auto cached = corrector.correct(read, sc, scratch_c, &cache);
    ASSERT_EQ(uncached.bases, cached.bases) << read.id;
  }
  EXPECT_EQ(su.bases_changed, sc.bases_changed);
  EXPECT_EQ(su.tiles_corrected, sc.tiles_corrected);
  const auto stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST(ReptileCorrector, RejectsOversizedTiles) {
  seq::ReadSet empty;
  reptile::ReptileParams p;
  p.k = 17;  // tile length 34 > 32
  EXPECT_THROW(reptile::ReptileCorrector(empty, p), std::invalid_argument);
}

}  // namespace
