// util::BoundedQueue + util::PipelineExecutor: the bounded-queue
// backpressure primitive and the order-restoring streaming executor the
// correction pipeline's overlapped passes run on. The *Storm tests are
// the TSan workload (ctest label `sanitize`, tsan preset): many
// producers and consumers hammering one queue, shutdown while full, and
// exception teardown from every stage.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/bounded_queue.hpp"
#include "util/pipeline_executor.hpp"

using namespace ngs;

TEST(BoundedQueue, FifoWithinCapacity) {
  util::BoundedQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.push(i));
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_EQ(queue.peak_size(), 4u);
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, CloseDrainsThenEndsStream) {
  util::BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3));  // sealed to producers
  int v = 0;
  EXPECT_TRUE(queue.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(queue.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(queue.pop(v));  // drained
}

TEST(BoundedQueue, AbortDropsItemsAndUnblocksEveryone) {
  util::BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.push(7));
  // A producer blocked on the full queue must be released by abort()
  // with a false return, never left hanging. (We can't observe "is
  // blocked" from outside — the wait-time counter only accumulates
  // after the wait ends — so give the thread a moment to block; if
  // abort() wins the race anyway, push still fails immediately and the
  // assertions below hold either way.)
  std::atomic<bool> pushed{false};
  std::atomic<bool> push_result{true};
  std::thread blocked([&] {
    push_result = queue.push(8);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  queue.abort();
  blocked.join();
  EXPECT_TRUE(pushed);
  EXPECT_FALSE(push_result);
  int v = 0;
  EXPECT_FALSE(queue.pop(v));  // items were dropped
  EXPECT_TRUE(queue.aborted());
}

// Producer/consumer storm: every pushed value is popped exactly once,
// across more threads than capacity slots (constant contention).
TEST(BoundedQueue, StormDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  util::BoundedQueue<int> queue(3);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::vector<int>> seen(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&queue, &seen, c] {
      int v = 0;
      while (queue.pop(v)) seen[c].push_back(v);
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  std::vector<int> all;
  for (const auto& s : seen) all.insert(all.end(), s.begin(), s.end());
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) EXPECT_EQ(all[i], i);
  EXPECT_LE(queue.peak_size(), queue.capacity());
}

// Shutdown-while-full: consumers vanish mid-stream (abort), producers
// blocked on the full queue all come back with false.
TEST(BoundedQueue, StormShutdownWhileFullReleasesProducers) {
  util::BoundedQueue<int> queue(2);
  constexpr int kProducers = 6;
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (!queue.push(i)) {
          ++rejected;
          return;
        }
      }
    });
  }
  // Drain a few items so producers are genuinely cycling, then abort.
  int v = 0;
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(queue.pop(v));
  queue.abort();
  for (auto& t : producers) t.join();
  EXPECT_EQ(rejected.load(), kProducers);
}

namespace {

util::PipelineExecutorStats run_squares(std::size_t workers,
                                        std::size_t depth, std::size_t count,
                                        std::vector<long>& out) {
  util::PipelineExecutorOptions options;
  options.workers = workers;
  options.queue_depth = depth;
  util::PipelineExecutor<long> executor(options);
  std::size_t produced = 0;
  return executor.run(
      [&](long& item) {
        if (produced >= count) return false;
        item = static_cast<long>(produced++);
        return true;
      },
      [](long& item, std::size_t) { item = item * item; },
      [&](long&& item) { out.push_back(item); });
}

}  // namespace

// The ordering guarantee: the writer sees items in exact production
// order at every worker count x queue depth.
TEST(PipelineExecutor, RestoresProductionOrder) {
  for (const std::size_t workers : {1ul, 2ul, 4ul, 8ul}) {
    for (const std::size_t depth : {1ul, 2ul, 8ul}) {
      std::vector<long> out;
      const auto stats = run_squares(workers, depth, 500, out);
      ASSERT_EQ(out.size(), 500u) << workers << "x" << depth;
      for (long i = 0; i < 500; ++i) {
        ASSERT_EQ(out[static_cast<std::size_t>(i)], i * i)
            << workers << "x" << depth;
      }
      EXPECT_EQ(stats.items, 500u);
      EXPECT_LE(stats.queue_peak, depth);
      // The in-flight gate bounds the reorder backlog.
      EXPECT_LE(stats.reorder_peak, depth + 2 * workers + 1);
    }
  }
}

TEST(PipelineExecutor, EmptyInputRunsNothing) {
  std::vector<long> out;
  const auto stats = run_squares(4, 4, 0, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.items, 0u);
}

// Exception propagation: whichever stage throws, run() rethrows that
// error on the calling thread and never hangs.
TEST(PipelineExecutor, ProducerExceptionPropagates) {
  util::PipelineExecutor<int> executor({2, 2});
  int produced = 0;
  EXPECT_THROW(
      executor.run(
          [&](int& item) {
            if (produced == 5) throw std::runtime_error("reader died");
            item = produced++;
            return true;
          },
          [](int&, std::size_t) {}, [](int&&) {}),
      std::runtime_error);
}

TEST(PipelineExecutor, WorkerExceptionPropagates) {
  util::PipelineExecutor<int> executor({4, 2});
  int produced = 0;
  try {
    executor.run(
        [&](int& item) {
          if (produced == 100) return false;
          item = produced++;
          return true;
        },
        [](int& item, std::size_t) {
          if (item == 17) throw std::runtime_error("worker died on 17");
        },
        [](int&&) {});
    FAIL() << "expected the worker exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker died on 17");
  }
}

TEST(PipelineExecutor, ConsumerExceptionPropagates) {
  util::PipelineExecutor<int> executor({2, 1});
  int produced = 0;
  int consumed = 0;
  EXPECT_THROW(
      executor.run(
          [&](int& item) {
            item = produced++;
            return true;  // unbounded stream: teardown must stop it
          },
          [](int&, std::size_t) {},
          [&](int&&) {
            if (++consumed == 9) throw std::runtime_error("writer died");
          }),
      std::runtime_error);
}

// Storm shape for TSan: wide fan-out, tiny queue, non-trivial payloads
// (heap-owning strings) so lifetime races surface.
TEST(PipelineExecutor, StormStringsRoundTrip) {
  util::PipelineExecutorOptions options;
  options.workers = 8;
  options.queue_depth = 2;
  util::PipelineExecutor<std::string> executor(options);
  constexpr int kItems = 5000;
  int produced = 0;
  std::vector<std::string> out;
  out.reserve(kItems);
  const auto stats = executor.run(
      [&](std::string& item) {
        if (produced >= kItems) return false;
        item = "item-" + std::to_string(produced++);
        return true;
      },
      [](std::string& item, std::size_t worker) {
        item += "/w";  // touch the payload on the worker
        (void)worker;
      },
      [&](std::string&& item) { out.push_back(std::move(item)); });
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)],
              "item-" + std::to_string(i) + "/w");
  }
  EXPECT_GT(stats.elapsed_seconds, 0.0);
  EXPECT_GE(stats.worker_utilization(options.workers), 0.0);
  EXPECT_LE(stats.worker_utilization(options.workers), 1.0);
}
