// Tests for abundance profiling (the Chapter 4 motivating task) and for
// the 454-style artifacts (chimeras, indels) in the metagenome simulator.

#include <gtest/gtest.h>

#include "closet/similarity.hpp"
#include "eval/abundance.hpp"
#include "sim/metagenome.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;

TEST(Abundance, ProfileSumsToOneAndDescends) {
  const std::vector<std::uint32_t> labels{0, 0, 0, 1, 1, 2};
  const auto profile = eval::abundance_profile(labels);
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_DOUBLE_EQ(profile[0], 0.5);
  EXPECT_DOUBLE_EQ(profile[1], 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(profile[2], 1.0 / 6.0);
  EXPECT_TRUE(eval::abundance_profile({}).empty());
}

TEST(Abundance, BrayCurtisBounds) {
  EXPECT_DOUBLE_EQ(eval::bray_curtis({0.5, 0.3, 0.2}, {0.5, 0.3, 0.2}), 0.0);
  EXPECT_DOUBLE_EQ(eval::bray_curtis({1.0}, {0.0, 1.0}), 1.0);
  const double d = eval::bray_curtis({0.6, 0.4}, {0.5, 0.5});
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 0.2);
}

TEST(Abundance, MatchedErrorZeroForPerfectClustering) {
  const std::vector<std::uint32_t> truth{0, 0, 1, 1, 1, 2};
  const std::vector<std::uint32_t> clusters{7, 7, 9, 9, 9, 4};
  EXPECT_DOUBLE_EQ(eval::matched_abundance_error(clusters, truth), 0.0);
}

TEST(Abundance, SplitClustersStillQuantifyCorrectly) {
  // A taxon split into two clusters keeps its total abundance.
  const std::vector<std::uint32_t> truth{0, 0, 0, 0, 1, 1};
  const std::vector<std::uint32_t> clusters{5, 5, 6, 6, 7, 7};
  EXPECT_DOUBLE_EQ(eval::matched_abundance_error(clusters, truth), 0.0);
}

TEST(Abundance, MergedTaxaLoseMass) {
  // Two taxa merged into one cluster: the smaller taxon's mass is
  // misattributed.
  const std::vector<std::uint32_t> truth{0, 0, 0, 1};
  const std::vector<std::uint32_t> clusters{5, 5, 5, 5};
  EXPECT_NEAR(eval::matched_abundance_error(clusters, truth), 0.25, 1e-12);
}

TEST(MetagenomeArtifacts, ChimerasAreSplices) {
  util::Rng rng(3);
  sim::TaxonomySpec tspec;
  tspec.branching = {2, 2, 2};
  const auto tax = sim::simulate_taxonomy(tspec, rng);
  sim::MetagenomeReadConfig cfg;
  cfg.num_reads = 2000;
  cfg.chimera_rate = 0.1;
  cfg.error_rate = 0.0;
  const auto sample = sim::simulate_metagenome_reads(tax, cfg, rng);
  ASSERT_EQ(sample.chimeric.size(), 2000u);
  std::size_t chimeras = 0;
  for (const bool c : sample.chimeric) chimeras += c;
  EXPECT_NEAR(static_cast<double>(chimeras) / 2000.0, 0.1, 0.03);
}

TEST(MetagenomeArtifacts, ConservedBlockRaisesCrossPhylumSimilarity) {
  sim::TaxonomySpec plain;
  plain.branching = {2, 2, 2};
  sim::TaxonomySpec conserved = plain;
  conserved.conserved_fraction = 0.5;
  util::Rng rng1(9), rng2(9);
  const auto tax_plain = sim::simulate_taxonomy(plain, rng1);
  const auto tax_cons = sim::simulate_taxonomy(conserved, rng2);
  auto cross_similarity = [](const sim::Taxonomy& tax) {
    const auto a = closet::kmer_hashes(tax.species_sequences.front(), 15);
    const auto b = closet::kmer_hashes(tax.species_sequences.back(), 15);
    return closet::set_similarity(a, b);
  };
  EXPECT_GT(cross_similarity(tax_cons), cross_similarity(tax_plain) + 0.2);
}

TEST(MetagenomeArtifacts, IndelsBreakKmersButNotAlignment) {
  util::Rng rng(11);
  sim::TaxonomySpec tspec;
  tspec.branching = {1, 1, 1};
  const auto tax = sim::simulate_taxonomy(tspec, rng);
  sim::MetagenomeReadConfig cfg;
  cfg.num_reads = 40;
  cfg.error_rate = 0.0;
  cfg.indel_rate = 0.02;  // heavy 454-style indels
  cfg.both_strands = false;
  cfg.amplicon_sites = 1;
  cfg.amplicon_sd = 1.0;
  const auto sample = sim::simulate_metagenome_reads(tax, cfg, rng);
  // Reads of the single species, same window, but with indels: the
  // alignment-based F stays high where the kmer-set F suffers.
  const auto& r1 = sample.reads.reads[0].bases;
  const auto& r2 = sample.reads.reads[1].bases;
  const double kmer_f = closet::set_similarity(closet::kmer_hashes(r1, 15),
                                               closet::kmer_hashes(r2, 15));
  const double aln_f = closet::banded_alignment_identity(r1, r2, 24);
  EXPECT_GT(aln_f, 0.9);
  EXPECT_GT(aln_f, kmer_f + 0.1);
}

}  // namespace
