// Tests for the bounded-memory spectrum builder (Sec. 2.3's
// divide-and-merge strategy).

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "io/fastx.hpp"
#include "kspec/chunked_builder.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ngs;

sim::SimulatedReads make_run(std::uint64_t seed) {
  util::Rng rng(seed);
  sim::GenomeSpec gspec;
  gspec.length = 20000;
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 25.0;
  return sim::simulate_reads(genome.sequence, model, cfg, rng);
}

TEST(ChunkedBuilder, MatchesMonolithicBuild) {
  const auto run = make_run(3);
  const auto reference = kspec::KSpectrum::build(run.reads, 13, true);

  for (const std::size_t batch : {2048ul, 16384ul, std::size_t{1} << 22}) {
    kspec::ChunkedSpectrumBuilder builder(13, true, batch);
    builder.add_reads(run.reads);
    int rounds = 0;
    const auto chunked = builder.finish(&rounds);
    ASSERT_EQ(chunked.size(), reference.size()) << "batch=" << batch;
    ASSERT_EQ(chunked.total_instances(), reference.total_instances());
    for (std::size_t i = 0; i < reference.size(); i += 101) {
      ASSERT_EQ(chunked.code_at(i), reference.code_at(i));
      ASSERT_EQ(chunked.count_at(i), reference.count_at(i));
    }
  }
}

TEST(ChunkedBuilder, ByteIdenticalAcrossPoolSizes) {
  const auto run = make_run(9);
  kspec::SpectrumBuildOptions serial;
  serial.threads = 1;
  const auto reference = kspec::KSpectrum::build(run.reads, 13, true, serial);

  for (const std::size_t threads : {1ul, 2ul, 4ul}) {
    util::ThreadPool pool(threads);
    kspec::ChunkedSpectrumBuilder builder(13, true, 4096, &pool);
    builder.add_reads(run.reads);
    const auto chunked = builder.finish();
    ASSERT_EQ(chunked.size(), reference.size()) << "threads=" << threads;
    ASSERT_EQ(chunked.total_instances(), reference.total_instances());
    ASSERT_TRUE(std::equal(chunked.codes().begin(), chunked.codes().end(),
                           reference.codes().begin(),
                           reference.codes().end()));
    ASSERT_TRUE(std::equal(chunked.counts().begin(), chunked.counts().end(),
                           reference.counts().begin(),
                           reference.counts().end()));
  }
}

TEST(ChunkedBuilder, PeakBufferIsBounded) {
  const auto run = make_run(5);
  constexpr std::size_t kBatch = 4096;
  kspec::ChunkedSpectrumBuilder builder(13, true, kBatch);
  builder.add_reads(run.reads);
  // A read contributes at most 2*(L-k+1) instances past the threshold.
  EXPECT_LE(builder.peak_buffered(), kBatch + 2 * 36);
  (void)builder.finish();
}

TEST(ChunkedBuilder, StreamsFastqWithoutReadSet) {
  const auto run = make_run(7);
  std::stringstream fastq;
  io::write_fastq(fastq, run.reads);

  kspec::ChunkedSpectrumBuilder builder(13, true, 8192);
  builder.add_fastq(fastq);
  const auto streamed = builder.finish();
  const auto reference = kspec::KSpectrum::build(run.reads, 13, true);
  EXPECT_EQ(streamed.size(), reference.size());
  EXPECT_EQ(streamed.total_instances(), reference.total_instances());
}

TEST(ChunkedBuilder, ReusableAfterFinish) {
  kspec::ChunkedSpectrumBuilder builder(8, false, 2048);
  builder.add_read("ACGTACGTACGT");
  const auto first = builder.finish();
  EXPECT_GT(first.size(), 0u);
  builder.add_read("TTTTTTTTTT");
  const auto second = builder.finish();
  EXPECT_TRUE(second.contains(seq::encode_kmer("TTTTTTTT").value()));
  EXPECT_FALSE(second.contains(seq::encode_kmer("ACGTACGT").value()));
}

TEST(ChunkedBuilder, EmptyInput) {
  kspec::ChunkedSpectrumBuilder builder(11);
  const auto spec = builder.finish();
  EXPECT_EQ(spec.size(), 0u);
  EXPECT_TRUE(spec.empty());
}

TEST(KSpectrum, FromSortedCountsValidates) {
  // Size mismatch throws in every build mode; the O(n) order/count scan
  // is debug-only, so out-of-order codes are asserted through the
  // always-available validate_sorted_counts entry point instead.
  EXPECT_THROW(kspec::KSpectrum::from_sorted_counts({1, 2}, {1}, 8),
               std::invalid_argument);
  const std::vector<seq::KmerCode> unsorted{2, 1};
  const std::vector<std::uint32_t> ones{1, 1};
  EXPECT_TRUE(
      kspec::KSpectrum::validate_sorted_counts(unsorted, ones, 8).has_value());
#ifndef NDEBUG
  EXPECT_THROW(kspec::KSpectrum::from_sorted_counts({2, 1}, {1, 1}, 8),
               std::invalid_argument);
#endif
  const auto s = kspec::KSpectrum::from_sorted_counts({5, 9}, {3, 4}, 8);
  EXPECT_EQ(s.count(5), 3u);
  EXPECT_EQ(s.total_instances(), 7u);
}

}  // namespace
