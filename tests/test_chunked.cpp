// Tests for the bounded-memory spectrum builder (Sec. 2.3's
// divide-and-merge strategy).

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "io/fastx.hpp"
#include "kspec/chunked_builder.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ngs;

sim::SimulatedReads make_run(std::uint64_t seed) {
  util::Rng rng(seed);
  sim::GenomeSpec gspec;
  gspec.length = 20000;
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 25.0;
  return sim::simulate_reads(genome.sequence, model, cfg, rng);
}

TEST(ChunkedBuilder, MatchesMonolithicBuild) {
  const auto run = make_run(3);
  const auto reference = kspec::KSpectrum::build(run.reads, 13, true);

  for (const std::size_t batch : {2048ul, 16384ul, std::size_t{1} << 22}) {
    kspec::ChunkedSpectrumBuilder builder(13, true, batch);
    builder.add_reads(run.reads);
    int rounds = 0;
    const auto chunked = builder.finish(&rounds);
    ASSERT_EQ(chunked.size(), reference.size()) << "batch=" << batch;
    ASSERT_EQ(chunked.total_instances(), reference.total_instances());
    for (std::size_t i = 0; i < reference.size(); i += 101) {
      ASSERT_EQ(chunked.code_at(i), reference.code_at(i));
      ASSERT_EQ(chunked.count_at(i), reference.count_at(i));
    }
  }
}

TEST(ChunkedBuilder, ByteIdenticalAcrossPoolSizes) {
  const auto run = make_run(9);
  kspec::SpectrumBuildOptions serial;
  serial.threads = 1;
  const auto reference = kspec::KSpectrum::build(run.reads, 13, true, serial);

  for (const std::size_t threads : {1ul, 2ul, 4ul}) {
    util::ThreadPool pool(threads);
    kspec::ChunkedSpectrumBuilder builder(13, true, 4096, &pool);
    builder.add_reads(run.reads);
    const auto chunked = builder.finish();
    ASSERT_EQ(chunked.size(), reference.size()) << "threads=" << threads;
    ASSERT_EQ(chunked.total_instances(), reference.total_instances());
    ASSERT_TRUE(std::equal(chunked.codes().begin(), chunked.codes().end(),
                           reference.codes().begin(),
                           reference.codes().end()));
    ASSERT_TRUE(std::equal(chunked.counts().begin(), chunked.counts().end(),
                           reference.counts().begin(),
                           reference.counts().end()));
  }
}

TEST(ChunkedBuilder, PeakBufferIsBounded) {
  const auto run = make_run(5);
  constexpr std::size_t kBatch = 4096;
  kspec::ChunkedSpectrumBuilder builder(13, true, kBatch);
  builder.add_reads(run.reads);
  // A read contributes at most 2*(L-k+1) instances past the threshold.
  EXPECT_LE(builder.peak_buffered(), kBatch + 2 * 36);
  (void)builder.finish();
}

TEST(ChunkedBuilder, StreamsFastqWithoutReadSet) {
  const auto run = make_run(7);
  std::stringstream fastq;
  io::write_fastq(fastq, run.reads);

  kspec::ChunkedSpectrumBuilder builder(13, true, 8192);
  builder.add_fastq(fastq);
  const auto streamed = builder.finish();
  const auto reference = kspec::KSpectrum::build(run.reads, 13, true);
  EXPECT_EQ(streamed.size(), reference.size());
  EXPECT_EQ(streamed.total_instances(), reference.total_instances());
}

TEST(ChunkedBuilder, ReusableAfterFinish) {
  kspec::ChunkedSpectrumBuilder builder(8, false, 2048);
  builder.add_read("ACGTACGTACGT");
  const auto first = builder.finish();
  EXPECT_GT(first.size(), 0u);
  builder.add_read("TTTTTTTTTT");
  const auto second = builder.finish();
  EXPECT_TRUE(second.contains(seq::encode_kmer("TTTTTTTT").value()));
  EXPECT_FALSE(second.contains(seq::encode_kmer("ACGTACGT").value()));
}

TEST(ChunkedBuilder, EmptyInput) {
  kspec::ChunkedSpectrumBuilder builder(11);
  const auto spec = builder.finish();
  EXPECT_EQ(spec.size(), 0u);
  EXPECT_TRUE(spec.empty());
}

// --- Out-of-core (budget/spill) path ----------------------------------

kspec::SpillOptions spill_options(std::size_t budget) {
  kspec::SpillOptions spill;
  spill.memory_budget_bytes = budget;
  spill.spill_dir = testing::TempDir();
  return spill;
}

TEST(ChunkedBuilder, SpilledBuildMatchesInMemoryByteForByte) {
  const auto run = make_run(11);
  const auto reference = kspec::KSpectrum::build(run.reads, 13, true);

  // The floor for this dataset is the finish-phase working set of the
  // largest prefix bin (~301 KB); budgets below that cannot be honored.
  for (const std::size_t budget : {std::size_t{350000}, std::size_t{600000}}) {
    kspec::ChunkedSpectrumBuilder builder(13, true, 1 << 20, nullptr,
                                          spill_options(budget));
    builder.add_reads(run.reads);
    EXPECT_TRUE(builder.spilled()) << "budget=" << budget;
    const auto spilled = builder.finish();
    EXPECT_GT(builder.spill_bytes(), 0u);
    EXPECT_GT(builder.peak_tracked_bytes(), 0u);
    EXPECT_LE(builder.peak_tracked_bytes(), budget) << "budget=" << budget;
    ASSERT_EQ(spilled.size(), reference.size()) << "budget=" << budget;
    ASSERT_EQ(spilled.total_instances(), reference.total_instances());
    ASSERT_TRUE(std::equal(spilled.codes().begin(), spilled.codes().end(),
                           reference.codes().begin(),
                           reference.codes().end()));
    ASSERT_TRUE(std::equal(spilled.counts().begin(), spilled.counts().end(),
                           reference.counts().begin(),
                           reference.counts().end()));
  }
}

TEST(ChunkedBuilder, UnderBudgetNeverSpills) {
  const auto run = make_run(13);
  kspec::ChunkedSpectrumBuilder builder(13, true, 1 << 20, nullptr,
                                        spill_options(std::size_t{1} << 30));
  builder.add_reads(run.reads);
  EXPECT_FALSE(builder.spilled());
  const auto spec = builder.finish();
  EXPECT_EQ(builder.spill_bytes(), 0u);
  const auto reference = kspec::KSpectrum::build(run.reads, 13, true);
  EXPECT_EQ(spec.size(), reference.size());
  EXPECT_EQ(spec.total_instances(), reference.total_instances());
}

TEST(ChunkedBuilder, FinishSpilledStreamsDisjointAscendingRuns) {
  const auto run = make_run(17);
  const auto reference = kspec::KSpectrum::build(run.reads, 13, true);

  kspec::ChunkedSpectrumBuilder builder(13, true, 1 << 20, nullptr,
                                        spill_options(250000));
  builder.add_reads(run.reads);
  ASSERT_TRUE(builder.spilled());
  builder.flush_spill();
  const std::size_t bins = builder.spill_nonempty_bins();
  EXPECT_GE(bins, 2u);
  const int shard_bits = builder.spill_shard_bits();
  const int shift = 2 * 13 - shard_bits;

  std::vector<seq::KmerCode> codes;
  std::vector<std::uint32_t> counts;
  std::size_t runs = 0;
  std::uint32_t last_prefix = 0;
  builder.finish_spilled([&](kspec::ChunkedSpectrumBuilder::SortedRun&& r) {
    if (runs > 0) EXPECT_GT(r.prefix, last_prefix) << "prefix order";
    last_prefix = r.prefix;
    ++runs;
    ASSERT_FALSE(r.codes.empty());
    for (const seq::KmerCode c : r.codes) {
      ASSERT_EQ(static_cast<std::uint32_t>(c >> shift), r.prefix);
    }
    codes.insert(codes.end(), r.codes.begin(), r.codes.end());
    counts.insert(counts.end(), r.counts.begin(), r.counts.end());
  });
  EXPECT_EQ(runs, bins);
  ASSERT_EQ(codes.size(), reference.size());
  EXPECT_TRUE(std::equal(codes.begin(), codes.end(),
                         reference.codes().begin(), reference.codes().end()));
  EXPECT_TRUE(std::equal(counts.begin(), counts.end(),
                         reference.counts().begin(),
                         reference.counts().end()));
}

TEST(ChunkedBuilder, SpilledBuilderIsReusable) {
  kspec::ChunkedSpectrumBuilder builder(8, true, 1 << 20,
                                        nullptr, spill_options(100000));
  // Force a spill on the first build by exceeding the minimum threshold.
  std::string read(5000, 'A');
  for (std::size_t i = 0; i < read.size(); i += 7) read[i] = 'C';
  for (int r = 0; r < 12; ++r) builder.add_read(read);
  EXPECT_TRUE(builder.spilled());
  const auto first = builder.finish();
  EXPECT_GT(first.size(), 0u);

  builder.add_read("TTTTTTTTTT");
  EXPECT_FALSE(builder.spilled()) << "finish() must reset the spill state";
  const auto second = builder.finish();
  EXPECT_TRUE(second.contains(seq::encode_kmer("TTTTTTTT").value()));
}

TEST(KSpectrum, FromSortedCountsValidates) {
  // Size mismatch throws in every build mode; the O(n) order/count scan
  // is debug-only, so out-of-order codes are asserted through the
  // always-available validate_sorted_counts entry point instead.
  EXPECT_THROW(kspec::KSpectrum::from_sorted_counts({1, 2}, {1}, 8),
               std::invalid_argument);
  const std::vector<seq::KmerCode> unsorted{2, 1};
  const std::vector<std::uint32_t> ones{1, 1};
  EXPECT_TRUE(
      kspec::KSpectrum::validate_sorted_counts(unsorted, ones, 8).has_value());
#ifndef NDEBUG
  EXPECT_THROW(kspec::KSpectrum::from_sorted_counts({2, 1}, {1, 1}, 8),
               std::invalid_argument);
#endif
  const auto s = kspec::KSpectrum::from_sorted_counts({5, 9}, {3, 4}, 8);
  EXPECT_EQ(s.count(5), 3u);
  EXPECT_EQ(s.total_instances(), 7u);
}

}  // namespace
