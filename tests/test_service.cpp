// Correction-service suite: protocol codec fuzzing, frame transport
// hardening (truncation, garbage magic, oversized lengths, mid-stream
// disconnects), and the full daemon loop — byte-identity against the
// offline pipeline, in-order windowed streaming, typed BUSY under
// saturation, per-batch worker-fault salvage, and epoch-based hot
// reload (including a corrupt replacement being rejected while the old
// epoch keeps serving).

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "core/registry.hpp"
#include "fault/fault.hpp"
#include "fault/sites.hpp"
#include "io/fastx.hpp"
#include "io/fastq_stream.hpp"
#include "service/client.hpp"
#include "service/framing.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;

// Pid-qualified: ctest runs the discovered tests and the `service`
// label suite as separate processes, possibly concurrently.
std::string temp_path(const std::string& name) {
  return testing::TempDir() + "ngs_svc_" + std::to_string(::getpid()) + "_" +
         name;
}

std::string make_fastq(std::uint64_t seed, std::size_t genome_length = 5000) {
  util::Rng rng(seed);
  sim::GenomeSpec gspec;
  gspec.length = genome_length;
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 8.0;
  const auto run = sim::simulate_reads(genome.sequence, model, cfg, rng);
  std::ostringstream os;
  io::write_fastq(os, run.reads);
  return os.str();
}

std::vector<seq::Read> parse_reads(const std::string& fastq) {
  std::istringstream is(fastq);
  io::FastqStreamReader reader(is, "<test>");
  std::vector<seq::Read> reads;
  while (reader.read_batch(reads, 4096) > 0) {
  }
  return reads;
}

/// Offline reference run: the streaming pipeline with `method`, saving
/// the pass-1 spectrum to `index_path` for the daemon to serve. Returns
/// the corrected FASTQ bytes the service must reproduce.
std::string offline_correct(const std::string& fastq,
                            const std::string& method,
                            const std::string& index_path = "") {
  core::PipelineOptions options;
  options.batch_size = 256;
  options.threads = 2;
  options.save_index_path = index_path;
  core::CorrectorConfig config;
  config.genome_length = 5000;
  core::CorrectionPipeline pipeline(core::make_corrector(method, config),
                                    options);
  std::ostringstream os;
  pipeline.run(
      [&fastq] { return std::make_unique<std::istringstream>(fastq); }, os);
  return os.str();
}

/// Streams `fastq` through a connected client in `batch_size` chunks
/// and returns the corrected FASTQ bytes plus the stream tallies.
std::string client_correct(service::Client& client,
                           const service::HelloOk& limits,
                           const std::string& fastq,
                           std::size_t batch_size = 97,
                           service::StreamResult* result_out = nullptr) {
  std::istringstream is(fastq);
  io::FastqStreamReader reader(is, "<client>");
  service::StreamOptions stream;
  stream.batch_size = batch_size;
  stream.window = 4;
  std::ostringstream os;
  const auto result = service::correct_stream(
      client, limits, stream,
      [&](std::vector<seq::Read>& reads) {
        reads.clear();
        return reader.read_batch(reads, stream.batch_size) > 0;
      },
      [&](std::vector<seq::Read>&& corrected) {
        io::write_fastq(os, corrected);
      });
  if (result_out != nullptr) *result_out = result;
  return os.str();
}

service::HelloRequest sap_hello() {
  service::HelloRequest hello;
  hello.method = "sap";
  hello.genome_length = 5000;
  return hello;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::instance().reset(); }
  void TearDown() override { fault::Registry::instance().reset(); }
};

// --- protocol codec ----------------------------------------------------

TEST_F(ServiceTest, CodecRoundTrips) {
  std::vector<std::uint8_t> buf;

  service::HelloRequest hello;
  hello.method = "reptile";
  hello.k = 13;
  hello.genome_length = 42;
  hello.error_rate = 0.25;
  service::encode_hello(hello, buf);
  const auto hello2 = service::decode_hello(buf.data(), buf.size());
  EXPECT_EQ(hello2.method, "reptile");
  EXPECT_EQ(hello2.k, 13);
  EXPECT_EQ(hello2.genome_length, 42u);
  EXPECT_DOUBLE_EQ(hello2.error_rate, 0.25);

  buf.clear();
  service::HelloOk ok;
  ok.resolved_k = 15;
  ok.epoch_id = 7;
  ok.max_inflight = 4;
  ok.max_batch_reads = 1000;
  ok.max_frame_bytes = 1 << 20;
  service::encode_hello_ok(ok, buf);
  const auto ok2 = service::decode_hello_ok(buf.data(), buf.size());
  EXPECT_EQ(ok2.resolved_k, 15);
  EXPECT_EQ(ok2.epoch_id, 7u);
  EXPECT_EQ(ok2.max_inflight, 4u);

  buf.clear();
  service::ReadBatch batch;
  batch.seq = 3;
  batch.reads.push_back({"r1", "ACGT", {30, 30, 31, 32}});
  batch.reads.push_back({"r2", "GGCC", {}});  // no quality
  service::encode_request(batch, buf);
  const auto batch2 = service::decode_request(buf.data(), buf.size());
  ASSERT_EQ(batch2.reads.size(), 2u);
  EXPECT_EQ(batch2.seq, 3u);
  EXPECT_EQ(batch2.reads[0].id, "r1");
  EXPECT_EQ(batch2.reads[0].bases, "ACGT");
  EXPECT_EQ(batch2.reads[0].quality,
            (std::vector<std::uint8_t>{30, 30, 31, 32}));
  EXPECT_EQ(batch2.reads[1].bases, "GGCC");
  EXPECT_TRUE(batch2.reads[1].quality.empty());

  buf.clear();
  service::ResponseBatch resp;
  resp.seq = 9;
  resp.reads_changed = 2;
  resp.bases_changed = 5;
  resp.reads.push_back({"r", "TTTT", {}});
  service::encode_response(resp, buf);
  const auto resp2 = service::decode_response(buf.data(), buf.size());
  EXPECT_EQ(resp2.seq, 9u);
  EXPECT_EQ(resp2.reads_changed, 2u);
  EXPECT_EQ(resp2.bases_changed, 5u);
  ASSERT_EQ(resp2.reads.size(), 1u);

  buf.clear();
  service::ErrorReply err;
  err.seq = 4;
  err.code = service::wire_error_code(ErrorKind::kIndex);
  err.message = "bad index";
  service::encode_error(err, buf);
  const auto err2 = service::decode_error(buf.data(), buf.size());
  EXPECT_EQ(err2.seq, 4u);
  EXPECT_EQ(err2.kind(), ErrorKind::kIndex);
  EXPECT_EQ(err2.message, "bad index");

  buf.clear();
  service::BusyReply busy;
  busy.seq = 11;
  service::encode_busy(busy, buf);
  EXPECT_EQ(service::decode_busy(buf.data(), buf.size()).seq, 11u);

  buf.clear();
  service::ReloadOk reload;
  reload.epoch_id = 5;
  service::encode_reload_ok(reload, buf);
  EXPECT_EQ(service::decode_reload_ok(buf.data(), buf.size()).epoch_id, 5u);
}

TEST_F(ServiceTest, ErrorKindsRoundTripTheWire) {
  for (const auto kind :
       {ErrorKind::kConfig, ErrorKind::kIo, ErrorKind::kParse,
        ErrorKind::kIndex, ErrorKind::kTask, ErrorKind::kInternal}) {
    EXPECT_EQ(service::error_kind_from_wire(service::wire_error_code(kind)),
              kind);
  }
}

// Every strict prefix of a valid payload must raise ProtocolError, not
// read past the buffer or accept a short record.
TEST_F(ServiceTest, CodecRejectsEveryTruncation) {
  std::vector<std::uint8_t> buf;
  service::ReadBatch batch;
  batch.seq = 1;
  batch.reads.push_back({"read-1", "ACGTACGT", {30, 30, 30, 30, 31, 31, 31, 31}});
  batch.reads.push_back({"read-2", "TTGG", {}});
  service::encode_request(batch, buf);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    EXPECT_THROW((void)service::decode_request(buf.data(), len),
                 service::ProtocolError)
        << "prefix of " << len << " bytes decoded";
  }
  // Trailing garbage is rejected too.
  buf.push_back(0);
  EXPECT_THROW((void)service::decode_request(buf.data(), buf.size()),
               service::ProtocolError);

  buf.clear();
  service::HelloRequest hello;
  hello.method = "sap";
  service::encode_hello(hello, buf);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    EXPECT_THROW((void)service::decode_hello(buf.data(), len),
                 service::ProtocolError);
  }
}

// Deterministic byte-flip fuzz: a corrupted payload either decodes (the
// flip hit a don't-care bit) or raises ProtocolError — never crashes,
// never over-reads (run under ASan via the `service` label).
TEST_F(ServiceTest, CodecSurvivesByteFlipFuzz) {
  std::vector<std::uint8_t> buf;
  service::ReadBatch batch;
  batch.seq = 77;
  for (int i = 0; i < 8; ++i) {
    batch.reads.push_back({"r" + std::to_string(i), "ACGTACGTACGT",
                           std::vector<std::uint8_t>(12, 30)});
  }
  service::encode_request(batch, buf);
  util::Rng rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    auto fuzzed = buf;
    const std::size_t pos = static_cast<std::size_t>(rng.below(fuzzed.size()));
    fuzzed[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    try {
      (void)service::decode_request(fuzzed.data(), fuzzed.size());
    } catch (const service::ProtocolError&) {
      // expected for most flips
    }
  }
}

// --- frame transport ---------------------------------------------------

/// Frame I/O over a socketpair, no server involved.
class FramingTest : public ServiceTest {
 protected:
  void SetUp() override {
    ServiceTest::SetUp();
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
    ServiceTest::TearDown();
  }
  void close_writer() {
    ::close(fds_[1]);
    fds_[1] = -1;
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramingTest, RoundTripAndCleanEof) {
  service::FrameChannel writer(fds_[1]);
  service::FrameChannel reader(fds_[0]);
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  writer.write_frame(service::FrameType::kStats, {});
  writer.write_frame(service::FrameType::kRequest, payload);
  close_writer();

  service::Frame frame;
  ASSERT_TRUE(reader.read_frame(frame));
  EXPECT_EQ(frame.type, service::FrameType::kStats);
  EXPECT_TRUE(frame.payload.empty());
  ASSERT_TRUE(reader.read_frame(frame));
  EXPECT_EQ(frame.type, service::FrameType::kRequest);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_FALSE(reader.read_frame(frame));  // clean EOF at the boundary
}

TEST_F(FramingTest, TruncatedHeaderIsIoError) {
  const std::uint8_t partial[7] = {0x4E, 0x47, 0x53, 0x43, 3, 0, 0};
  ASSERT_EQ(::write(fds_[1], partial, sizeof(partial)),
            static_cast<ssize_t>(sizeof(partial)));
  close_writer();
  service::FrameChannel reader(fds_[0]);
  service::Frame frame;
  try {
    (void)reader.read_frame(frame);
    FAIL() << "truncated header accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
}

TEST_F(FramingTest, MidStreamDisconnectIsIoError) {
  // Valid header promising 100 payload bytes, then the peer vanishes.
  service::FrameChannel writer(fds_[1]);
  std::uint8_t header[16] = {};
  header[0] = 0x4E; header[1] = 0x47; header[2] = 0x53; header[3] = 0x43;
  header[4] = 3;  // kRequest
  header[8] = 100;
  ASSERT_EQ(::write(fds_[1], header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  const std::uint8_t some[10] = {};
  ASSERT_EQ(::write(fds_[1], some, sizeof(some)),
            static_cast<ssize_t>(sizeof(some)));
  close_writer();
  service::FrameChannel reader(fds_[0]);
  service::Frame frame;
  try {
    (void)reader.read_frame(frame);
    FAIL() << "mid-frame disconnect accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
}

TEST_F(FramingTest, GarbageMagicIsProtocolError) {
  std::uint8_t header[16] = {0xde, 0xad, 0xbe, 0xef, 1, 0, 0, 0};
  ASSERT_EQ(::write(fds_[1], header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  service::FrameChannel reader(fds_[0]);
  service::Frame frame;
  EXPECT_THROW((void)reader.read_frame(frame), service::ProtocolError);
}

TEST_F(FramingTest, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  std::uint8_t header[16] = {0x4E, 0x47, 0x53, 0x43, 3, 0, 0, 0};
  for (int i = 8; i < 16; ++i) header[i] = 0xff;  // ~2^64 payload "bytes"
  ASSERT_EQ(::write(fds_[1], header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  service::FrameChannel reader(fds_[0], /*max_frame_bytes=*/1 << 20);
  service::Frame frame;
  EXPECT_THROW((void)reader.read_frame(frame), service::ProtocolError);
}

TEST_F(FramingTest, UnknownTypeAndReservedBytesAreProtocolErrors) {
  {
    std::uint8_t header[16] = {0x4E, 0x47, 0x53, 0x43, 200, 0, 0, 0};
    ASSERT_EQ(::write(fds_[1], header, sizeof(header)),
              static_cast<ssize_t>(sizeof(header)));
    service::FrameChannel reader(fds_[0]);
    service::Frame frame;
    EXPECT_THROW((void)reader.read_frame(frame), service::ProtocolError);
  }
  {
    std::uint8_t header[16] = {0x4E, 0x47, 0x53, 0x43, 1, 9, 0, 0};
    ASSERT_EQ(::write(fds_[1], header, sizeof(header)),
              static_cast<ssize_t>(sizeof(header)));
    service::FrameChannel reader(fds_[0]);
    service::Frame frame;
    EXPECT_THROW((void)reader.read_frame(frame), service::ProtocolError);
  }
}

// --- end-to-end server -------------------------------------------------

/// A running daemon over a fresh simulated data set: index on disk
/// (written by the offline sap reference run), reads on disk (for
/// buffered methods), expected outputs captured.
class ServerTest : public ServiceTest {
 protected:
  void start(service::ServiceOptions options = {},
             bool with_reads = true) {
    fastq_ = make_fastq(21);
    index_path_ = temp_path("server.ngsx");
    reads_path_ = temp_path("server_reads.fastq");
    {
      std::ofstream os(reads_path_);
      os << fastq_;
    }
    expected_sap_ = offline_correct(fastq_, "sap", index_path_);

    socket_path_ = temp_path("d.sock");
    options.socket_path = socket_path_;
    service::IndexRegistryConfig registry;
    registry.index_paths.push_back(index_path_);
    if (with_reads) registry.reads_path = reads_path_;
    server_ = std::make_unique<service::CorrectionServer>(options, registry);
    server_->start();
  }

  void TearDown() override {
    server_.reset();
    std::remove(index_path_.c_str());
    std::remove(reads_path_.c_str());
    ServiceTest::TearDown();
  }

  service::Client make_client() {
    service::Client client(socket_path_);
    client.connect();
    return client;
  }

  std::string fastq_;
  std::string index_path_;
  std::string reads_path_;
  std::string socket_path_;
  std::string expected_sap_;
  std::unique_ptr<service::CorrectionServer> server_;
};

TEST_F(ServerTest, SapStreamingIsByteIdenticalToOffline) {
  start();
  auto client = make_client();
  const auto limits = client.hello(sap_hello());
  EXPECT_GT(limits.resolved_k, 0);
  EXPECT_EQ(limits.epoch_id, 1u);
  service::StreamResult result;
  const std::string served = client_correct(client, limits, fastq_, 97,
                                            &result);
  EXPECT_EQ(served, expected_sap_);
  EXPECT_EQ(result.reads, parse_reads(fastq_).size());
}

TEST_F(ServerTest, ReptileBufferedIsByteIdenticalToOffline) {
  start();
  const std::string expected = offline_correct(fastq_, "reptile");
  auto client = make_client();
  service::HelloRequest hello;
  hello.method = "reptile";
  hello.genome_length = 5000;
  const auto limits = client.hello(hello);
  EXPECT_EQ(limits.resolved_k, 0);  // buffered method
  EXPECT_EQ(client_correct(client, limits, fastq_), expected);
}

TEST_F(ServerTest, ConcurrentClientsAllGetIdenticalBytes) {
  start();
  std::vector<std::string> outputs(4);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    threads.emplace_back([this, &outputs, i] {
      service::Client client(socket_path_);
      client.connect();
      const auto limits = client.hello(sap_hello());
      outputs[i] = client_correct(client, limits, fastq_,
                                  61 + 13 * i);  // staggered batch sizes
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& out : outputs) EXPECT_EQ(out, expected_sap_);
}

TEST_F(ServerTest, HelloRejectsUnknownMethodAndMissingIndex) {
  start(/*options=*/{}, /*with_reads=*/false);
  {
    auto client = make_client();
    service::HelloRequest hello;
    hello.method = "no-such-method";
    try {
      (void)client.hello(hello);
      FAIL() << "unknown method accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kConfig);
    }
  }
  {
    // Server holds only the sap index k; ask for a k it cannot serve.
    auto client = make_client();
    auto hello = sap_hello();
    hello.k = 9;  // index is k=12 for genome_length 5000
    try {
      (void)client.hello(hello);
      FAIL() << "unserved k accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kConfig);
    }
  }
  {
    // Buffered method without --reads on the daemon.
    auto client = make_client();
    service::HelloRequest hello;
    hello.method = "reptile";
    try {
      (void)client.hello(hello);
      FAIL() << "buffered method without reads accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kConfig);
    }
  }
}

TEST_F(ServerTest, OutOfOrderSeqClosesConnectionWithTypedError) {
  start();
  auto client = make_client();
  (void)client.hello(sap_hello());
  service::ReadBatch batch;
  batch.seq = 5;  // must be 0
  batch.reads.push_back({"r", "ACGTACGTACGT", {}});
  client.send_request(batch);
  const auto reply = client.read_reply();
  ASSERT_EQ(reply.type, service::FrameType::kError);
  const auto err =
      service::decode_error(reply.payload.data(), reply.payload.size());
  EXPECT_EQ(err.kind(), ErrorKind::kParse);
  EXPECT_EQ(err.seq, service::ErrorReply::kConnectionSeq);
}

TEST_F(ServerTest, RequestBeforeHelloIsRejected) {
  start();
  auto client = make_client();
  service::ReadBatch batch;
  batch.reads.push_back({"r", "ACGT", {}});
  client.send_request(batch);
  const auto reply = client.read_reply();
  ASSERT_EQ(reply.type, service::FrameType::kError);
  EXPECT_EQ(service::decode_error(reply.payload.data(), reply.payload.size())
                .kind(),
            ErrorKind::kParse);
}

TEST_F(ServerTest, GarbageBytesGetTypedErrorNotHang) {
  start();
  auto client = make_client();
  client.send_frame(service::FrameType::kHello,
                    std::vector<std::uint8_t>(37, 0xab));
  const auto reply = client.read_reply();
  ASSERT_EQ(reply.type, service::FrameType::kError);
  EXPECT_EQ(service::decode_error(reply.payload.data(), reply.payload.size())
                .kind(),
            ErrorKind::kParse);
}

TEST_F(ServerTest, WorkerFaultCostsOneBatchNotTheConnection) {
  start();
  auto client = make_client();
  const auto limits = client.hello(sap_hello());
  const auto reads = parse_reads(fastq_);

  // Batch 0 will hit the injected worker fault; batches 1 and 2 must
  // still come back corrected, in order, on the same connection.
  fault::Registry::instance().configure("service.worker=n1");
  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    service::ReadBatch batch;
    batch.seq = seq;
    batch.reads.assign(reads.begin() + 10 * seq,
                       reads.begin() + 10 * (seq + 1));
    client.send_request(batch);
  }
  const auto reply0 = client.read_reply();
  ASSERT_EQ(reply0.type, service::FrameType::kError);
  const auto err =
      service::decode_error(reply0.payload.data(), reply0.payload.size());
  EXPECT_EQ(err.seq, 0u);
  EXPECT_EQ(err.kind(), ErrorKind::kTask);
  for (std::uint64_t seq = 1; seq < 3; ++seq) {
    const auto reply = client.read_reply();
    ASSERT_EQ(reply.type, service::FrameType::kResponse) << "seq " << seq;
    const auto resp =
        service::decode_response(reply.payload.data(), reply.payload.size());
    EXPECT_EQ(resp.seq, seq);
    ASSERT_EQ(resp.reads.size(), 10u);
    EXPECT_EQ(resp.reads[0].id, reads[10 * seq].id);
  }
  // The connection is still fully usable.
  EXPECT_NE(client.stats().find("batches_failed=1"), std::string::npos);
  (void)limits;
}

TEST_F(ServerTest, SaturationShedsWithTypedBusy) {
  service::ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.max_inflight_per_client = 8;
  start(options);
  auto client = make_client();
  (void)client.hello(sap_hello());

  // One big batch parks the only worker; the tiny queue then absorbs
  // one more batch, and the rest must be shed with BUSY carrying the
  // right seq — not silently dropped, not an error.
  const auto reads = parse_reads(fastq_);
  std::vector<seq::Read> big;
  for (int rep = 0; rep < 40; ++rep) {
    big.insert(big.end(), reads.begin(), reads.end());
  }
  service::ReadBatch batch;
  batch.seq = 0;
  batch.reads = big;
  client.send_request(batch);
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    service::ReadBatch small;
    small.seq = seq;
    small.reads.assign(reads.begin(), reads.begin() + 4);
    client.send_request(small);
  }
  std::size_t busy = 0;
  std::size_t ok = 0;
  std::uint64_t last_reply_seq = 0;
  bool first = true;
  for (int i = 0; i < 7; ++i) {
    const auto reply = client.read_reply();
    std::uint64_t seq = 0;
    if (reply.type == service::FrameType::kBusy) {
      ++busy;
      seq = service::decode_busy(reply.payload.data(), reply.payload.size())
                .seq;
    } else {
      ASSERT_EQ(reply.type, service::FrameType::kResponse);
      ++ok;
      seq = service::decode_response(reply.payload.data(),
                                     reply.payload.size())
                .seq;
    }
    // Replies come back in request order regardless of shedding.
    if (!first) EXPECT_GT(seq, last_reply_seq);
    last_reply_seq = seq;
    first = false;
  }
  EXPECT_GE(busy, 1u) << "saturation never shed a batch";
  // Only the big batch is guaranteed a RESP: whether the first small
  // batch squeezes into the queue before the worker dequeues the big
  // one is a scheduling race (on one core the reader usually wins).
  EXPECT_GE(ok, 1u);
  EXPECT_NE(client.stats().find("busy_rejections="), std::string::npos);
}

TEST_F(ServerTest, BusyRetryPathDeliversCompleteOrderedOutput) {
  service::ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.max_inflight_per_client = 8;
  start(options);
  auto client = make_client();
  const auto limits = client.hello(sap_hello());
  // Small batches + wide window against a tiny queue: correct_stream
  // must absorb any BUSYs via resend and still produce identical bytes.
  service::StreamResult result;
  const std::string served =
      client_correct(client, limits, fastq_, 31, &result);
  EXPECT_EQ(served, expected_sap_);
}

TEST_F(ServerTest, StatsReportsServingCounters) {
  start();
  auto client = make_client();
  const auto limits = client.hello(sap_hello());
  (void)client_correct(client, limits, fastq_);
  const std::string stats = client.stats();
  EXPECT_NE(stats.find("epoch=1\n"), std::string::npos);
  EXPECT_NE(stats.find("reloads=0\n"), std::string::npos);
  EXPECT_NE(stats.find("indexes=1\n"), std::string::npos);
  EXPECT_EQ(stats.find("batches_corrected=0\n"), std::string::npos);
}

TEST_F(ServerTest, HotReloadSwapsEpochWithoutDisruptingClients) {
  start();
  auto streaming = make_client();
  const auto limits = streaming.hello(sap_hello());

  auto control = make_client();
  EXPECT_EQ(control.reload(), 2u);

  // The pre-reload connection keeps working and picks up the new epoch
  // on its next request; bytes are identical (same index files).
  EXPECT_EQ(client_correct(streaming, limits, fastq_), expected_sap_);
  auto after = make_client();
  const auto limits2 = after.hello(sap_hello());
  EXPECT_EQ(limits2.epoch_id, 2u);
  EXPECT_EQ(client_correct(after, limits2, fastq_), expected_sap_);
}

TEST_F(ServerTest, ReloadFaultKeepsOldEpochServing) {
  start();
  fault::Registry::instance().configure("service.reload=n1");
  {
    auto client = make_client();
    try {
      (void)client.reload();
      FAIL() << "injected reload fault did not surface";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kIndex);
    }
  }
  // Old epoch still serves, same bytes; epoch id unchanged.
  auto client = make_client();
  const auto limits = client.hello(sap_hello());
  EXPECT_EQ(limits.epoch_id, 1u);
  EXPECT_EQ(client_correct(client, limits, fastq_), expected_sap_);
  EXPECT_NE(client.stats().find("reloads=0\n"), std::string::npos);
}

TEST_F(ServerTest, CorruptReplacementIndexIsRejectedOldEpochServes) {
  start();
  // Replace the index file via rename (new inode — the serving epoch's
  // mapping still points at the old bytes) with a corrupted copy.
  const std::string corrupt_path = index_path_ + ".corrupt";
  {
    std::ifstream in(index_path_, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 400u);
    bytes[300] = static_cast<char>(~bytes[300]);
    std::ofstream out(corrupt_path, std::ios::binary);
    out << bytes;
  }
  ASSERT_EQ(std::rename(corrupt_path.c_str(), index_path_.c_str()), 0);

  {
    auto client = make_client();
    try {
      (void)client.reload();
      FAIL() << "corrupt replacement index accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kIndex);
    }
  }
  // In-flight serving state is untouched: the old mapping still
  // produces the reference bytes.
  auto client = make_client();
  const auto limits = client.hello(sap_hello());
  EXPECT_EQ(limits.epoch_id, 1u);
  EXPECT_EQ(client_correct(client, limits, fastq_), expected_sap_);
}

TEST_F(ServerTest, OversizedBatchGetsPerRequestConfigError) {
  service::ServiceOptions options;
  options.max_batch_reads = 8;
  start(options);
  auto client = make_client();
  (void)client.hello(sap_hello());
  const auto reads = parse_reads(fastq_);
  service::ReadBatch batch;
  batch.seq = 0;
  batch.reads.assign(reads.begin(), reads.begin() + 9);
  client.send_request(batch);
  const auto reply = client.read_reply();
  ASSERT_EQ(reply.type, service::FrameType::kError);
  const auto err =
      service::decode_error(reply.payload.data(), reply.payload.size());
  EXPECT_EQ(err.seq, 0u);
  EXPECT_EQ(err.kind(), ErrorKind::kConfig);
  // The connection survives the oversized batch.
  service::ReadBatch ok;
  ok.seq = 1;
  ok.reads.assign(reads.begin(), reads.begin() + 4);
  client.send_request(ok);
  const auto reply2 = client.read_reply();
  EXPECT_EQ(reply2.type, service::FrameType::kResponse);
}

}  // namespace
