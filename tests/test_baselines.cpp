// Tests for the prior-art baselines the dissertation surveys: the SAP
// corrector, HiTEC-style witness correction, and Quake-style q-mer
// weighting.

#include <gtest/gtest.h>

#include "baselines/hitec.hpp"
#include "baselines/qmer.hpp"
#include "baselines/sap.hpp"
#include "eval/correction_metrics.hpp"
#include "eval/kmer_classification.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;

struct Setup {
  std::string genome;
  sim::SimulatedReads sim;
};

Setup make_setup(std::uint64_t seed, double err = 0.008,
                 double coverage = 50.0) {
  util::Rng rng(seed);
  sim::GenomeSpec gspec;
  gspec.length = 15000;
  Setup s;
  s.genome = sim::simulate_genome(gspec, rng).sequence;
  const auto model = sim::ErrorModel::illumina(36, err);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = coverage;
  s.sim = sim::simulate_reads(s.genome, model, cfg, rng);
  return s;
}

TEST(Sap, WeakKmerCounting) {
  const auto setup = make_setup(3);
  baselines::SapParams params;
  params.k = 11;
  params.solid_threshold = 3;
  baselines::SapCorrector corrector(setup.sim.reads, params);
  // An error-free genomic window at decent coverage has no weak kmers.
  EXPECT_EQ(corrector.weak_kmers(setup.genome.substr(1000, 36)), 0);
  // Random sequence is all-weak.
  util::Rng rng(4);
  const auto junk = sim::random_sequence(36, {0.25, 0.25, 0.25, 0.25}, rng);
  EXPECT_EQ(corrector.weak_kmers(junk), 36 - 11 + 1);
}

TEST(Sap, FixesMostReads) {
  const auto setup = make_setup(5);
  baselines::SapParams params;
  params.k = 11;
  baselines::SapCorrector corrector(setup.sim.reads, params);
  baselines::SapStats stats;
  const auto corrected = corrector.correct_all(setup.sim.reads, stats);
  const auto m = eval::evaluate_correction(setup.sim.reads, corrected);
  EXPECT_GT(m.gain(), 0.4) << "TP=" << m.tp << " FP=" << m.fp;
  EXPECT_GT(m.specificity(), 0.995);
  EXPECT_GT(stats.reads_fixed, 0u);
  EXPECT_GT(stats.reads_clean, stats.reads_unfixable);
}

TEST(Sap, CleanReadUntouched) {
  const auto setup = make_setup(7, 1e-7);
  baselines::SapParams params;
  params.k = 11;
  baselines::SapCorrector corrector(setup.sim.reads, params);
  baselines::SapStats stats;
  const auto corrected = corrector.correct_all(setup.sim.reads, stats);
  const auto m = eval::evaluate_correction(setup.sim.reads, corrected);
  EXPECT_GT(m.specificity(), 0.9995);
}

TEST(Hitec, CorrectsWithWitnessSupport) {
  const auto setup = make_setup(9);
  baselines::HitecParams params;
  params.k = 11;
  baselines::HitecCorrector corrector(setup.sim.reads, params);
  baselines::HitecStats stats;
  const auto corrected = corrector.correct_all(setup.sim.reads, stats);
  const auto m = eval::evaluate_correction(setup.sim.reads, corrected);
  EXPECT_GT(m.gain(), 0.4) << "TP=" << m.tp << " FP=" << m.fp;
  EXPECT_GT(m.specificity(), 0.995);
  EXPECT_GT(stats.corrections, 0u);
}

TEST(Hitec, ShortReadsPassThrough) {
  const auto setup = make_setup(11);
  baselines::HitecParams params;
  params.k = 11;
  baselines::HitecCorrector corrector(setup.sim.reads, params);
  baselines::HitecStats stats;
  const seq::Read tiny{"t", "ACGTACGT", {}};
  EXPECT_EQ(corrector.correct(tiny, stats).bases, "ACGT" "ACGT");
}

TEST(Qmer, WeightsAreBoundedByCounts) {
  const auto setup = make_setup(13);
  baselines::QmerCounter counter(setup.sim.reads, 11);
  const auto& w = counter.weights();
  const auto y = counter.counts();
  ASSERT_EQ(w.size(), y.size());
  for (std::size_t i = 0; i < w.size(); i += 17) {
    ASSERT_GE(w[i], 0.0);
    ASSERT_LE(w[i], y[i] + 1e-9);
  }
}

TEST(Qmer, WeightsSharpenErrorSeparation) {
  // Error kmers carry low-quality bases, so their quality weight drops
  // further below the trusted mass than their raw count does: the best
  // achievable FP+FN with weights is no worse than with counts.
  const auto setup = make_setup(15, 0.015, 60.0);
  baselines::QmerCounter counter(setup.sim.reads, 11);
  const auto genome_spec =
      kspec::KSpectrum::build_from_sequence(setup.genome, 11, true);
  const auto truth = eval::genome_truth(counter.spectrum(), genome_spec);
  const auto thresholds = eval::linear_thresholds(80.0, 0.25);
  const auto by_weight =
      eval::best_point(eval::sweep_thresholds(counter.weights(), truth,
                                              thresholds));
  const auto by_count = eval::best_point(
      eval::sweep_thresholds(counter.counts(), truth, thresholds));
  EXPECT_LE(by_weight.wrong(), by_count.wrong() + by_count.wrong() / 10);
}

}  // namespace
