// Tests for the paper's proposed extensions implemented here: the
// CLOSET clustering baselines (single linkage, CD-HIT-style), the
// Reptile+REDEEM hybrid corrector (Sec. 3.5), diploid simulation and
// SNP-candidate detection (Chapter 5).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "closet/baselines.hpp"
#include "eval/ari.hpp"
#include "eval/correction_metrics.hpp"
#include "redeem/error_dist.hpp"
#include "redeem/hybrid.hpp"
#include "reptile/polymorphism.hpp"
#include "sim/diploid.hpp"
#include "sim/genome.hpp"
#include "sim/metagenome.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;

TEST(SingleLinkage, ComponentsFollowEdges) {
  std::vector<closet::Edge> edges = {
      {0, 1, 0.95}, {1, 2, 0.92}, {3, 4, 0.99}, {2, 5, 0.5}};
  const auto labels = closet::single_linkage_labels(edges, 0.9, 6);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[5], labels[2]);  // below-threshold edge ignored
}

TEST(SingleLinkage, OneBadEdgeMergesEverything) {
  // The failure mode Chapter 4 critiques: a single cross-cluster edge
  // collapses the taxonomy.
  std::vector<closet::Edge> edges;
  for (std::uint32_t i = 0; i + 1 < 10; ++i) edges.push_back({i, i + 1u, 0.95});
  const auto labels = closet::single_linkage_labels(edges, 0.9, 10);
  const std::set<std::uint32_t> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 1u);
}

TEST(CdHit, ClustersNearDuplicates) {
  util::Rng rng(3);
  const auto gene =
      sim::random_sequence(400, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto other =
      sim::random_sequence(400, {0.25, 0.25, 0.25, 0.25}, rng);
  seq::ReadSet reads;
  reads.reads.push_back({"a", gene, {}});
  reads.reads.push_back({"b", gene.substr(5, 380), {}});
  reads.reads.push_back({"c", gene.substr(0, 350), {}});
  reads.reads.push_back({"d", other, {}});
  closet::CdHitParams params;
  params.threshold = 0.9;
  const auto labels = closet::cdhit_labels(reads, params);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  // The longest read is the representative of its cluster.
  EXPECT_EQ(labels[0], 0u);
}

TEST(Baselines, QuasiCliqueBeatsSingleLinkageUnderNoiseEdge) {
  // Two dense species blocks plus one spurious cross edge: single
  // linkage merges the blocks; the ARI against truth must suffer
  // relative to a clustering that keeps them apart.
  std::vector<closet::Edge> edges;
  for (std::uint32_t i = 0; i < 20; ++i) {
    for (std::uint32_t j = i + 1; j < 20; ++j) {
      edges.push_back({i, j, 0.95});                // block 1: 0..19
      edges.push_back({i + 20u, j + 20u, 0.95});    // block 2: 20..39
    }
  }
  edges.push_back({5, 25, 0.95});  // the one bad edge
  std::vector<std::uint32_t> truth(40);
  for (std::uint32_t i = 0; i < 40; ++i) truth[i] = i / 20;

  const auto sl = closet::single_linkage_labels(edges, 0.9, 40);
  const double sl_ari = eval::adjusted_rand_index(sl, truth).ari;
  EXPECT_LT(sl_ari, 0.1);  // everything merged: no information left
}

TEST(Hybrid, OutperformsSingleMethodsOnMixedGenome) {
  // Genome with half its span in high-multiplicity repeats: Reptile
  // struggles in the repeats, REDEEM in the unique half.
  util::Rng rng(13);
  sim::GenomeSpec gspec;
  gspec.length = 20000;
  gspec.repeats = {{400, 25, 0.0}};
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 60.0;
  const auto run = sim::simulate_reads(genome.sequence, model, cfg, rng);

  redeem::HybridParams params;
  params.reptile.k = 10;
  params.reptile.d = 1;
  params.reptile.c_min = 3;
  params.reptile.c_good = 8;
  const auto q = redeem::kmer_error_matrices(
      redeem::ErrorDistKind::kTrueIllumina, params.redeem_k, model);
  redeem::HybridCorrector hybrid(q, params);
  redeem::HybridStats stats;
  const auto corrected = hybrid.correct_all(run.reads, stats);
  const auto metrics = eval::evaluate_correction(run.reads, corrected);
  EXPECT_GT(metrics.gain(), 0.55)
      << "TP=" << metrics.tp << " FP=" << metrics.fp << " FN=" << metrics.fn;
  EXPECT_GT(stats.redeem.bases_changed, 0u);
  EXPECT_GT(stats.reptile.bases_changed, 0u);
}

TEST(Diploid, SnpsAreHeterozygousAndSpaced) {
  util::Rng rng(17);
  const auto genome =
      sim::random_sequence(30000, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.005);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 30.0;
  const auto sample =
      sim::simulate_diploid(genome, 0.002, 40, model, cfg, rng);
  ASSERT_GT(sample.snp_positions.size(), 20u);
  // SNPs differ between haplotypes, spacing respected.
  for (std::size_t i = 0; i < sample.snp_positions.size(); ++i) {
    const auto pos = sample.snp_positions[i];
    EXPECT_NE(sample.haplotype_a[pos], sample.haplotype_b[pos]);
    if (i > 0) {
      EXPECT_GE(pos - sample.snp_positions[i - 1], 40u);
    }
  }
  // Both haplotypes are sampled.
  const auto b_count = static_cast<std::size_t>(
      std::count(sample.from_b.begin(), sample.from_b.end(), true));
  EXPECT_GT(b_count, sample.reads.reads.size() / 3);
  EXPECT_LT(b_count, sample.reads.reads.size() * 2 / 3);
  EXPECT_EQ(sample.from_b.size(), sample.reads.reads.size());
}

TEST(Polymorphism, DetectsPlantedSnps) {
  util::Rng rng(19);
  const auto genome =
      sim::random_sequence(30000, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.004);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 60.0;
  const auto sample =
      sim::simulate_diploid(genome, 0.0015, 50, model, cfg, rng);
  ASSERT_GT(sample.snp_positions.size(), 10u);

  reptile::ReptileParams params;
  params.k = 10;
  params.c_min = 3;
  params.c_good = 8;
  reptile::ReptileCorrector corrector(sample.reads.reads, params);
  reptile::SnpParams snp_params;
  snp_params.min_support = 5;
  const auto candidates =
      reptile::detect_polymorphisms(corrector, snp_params);
  ASSERT_FALSE(candidates.empty());

  // Verify candidates against truth: a candidate is correct if its tile
  // pair locates at a SNP position. Anchor via exact search of tile_a in
  // haplotype A or B.
  const int T = params.tile_length();
  const std::set<std::size_t> truth(sample.snp_positions.begin(),
                                    sample.snp_positions.end());
  std::size_t correct = 0;
  for (const auto& cand : candidates) {
    const std::string sa = seq::decode_kmer(cand.tile_a, T);
    const std::string sb = seq::decode_kmer(cand.tile_b, T);
    bool hit = false;
    for (const auto& s : {sa, sb, seq::reverse_complement(sa),
                          seq::reverse_complement(sb)}) {
      for (const auto* hap : {&sample.haplotype_a, &sample.haplotype_b}) {
        auto pos = hap->find(s);
        while (pos != std::string::npos && !hit) {
          // The differing offset must land on a SNP position (account
          // for both orientations by checking the whole window).
          for (int o = 0; o < T; ++o) {
            if (truth.count(pos + static_cast<std::size_t>(o)) != 0) {
              hit = true;
              break;
            }
          }
          pos = hap->find(s, pos + 1);
        }
      }
    }
    correct += hit;
  }
  // Most candidates should anchor at true SNP sites (high precision).
  EXPECT_GT(static_cast<double>(correct) /
                static_cast<double>(candidates.size()),
            0.7)
      << correct << "/" << candidates.size();
  // And a good share of SNPs should be recoverable (recall proxy:
  // distinct SNPs hit by at least one candidate is checked in the bench).
}

TEST(Polymorphism, QuietOnHaploidData) {
  util::Rng rng(23);
  sim::GenomeSpec gspec;
  gspec.length = 20000;
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.005);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 50.0;
  const auto run = sim::simulate_reads(genome.sequence, model, cfg, rng);
  reptile::ReptileParams params;
  params.k = 10;
  reptile::ReptileCorrector corrector(run.reads, params);
  reptile::SnpParams snp_params;
  snp_params.min_support = 6;
  const auto candidates =
      reptile::detect_polymorphisms(corrector, snp_params);
  // Errors are heavily unbalanced vs their sources: few false sites.
  EXPECT_LT(candidates.size(), 25u);
}

}  // namespace
