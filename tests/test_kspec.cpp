#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "kspec/hamming_graph.hpp"
#include "kspec/kspectrum.hpp"
#include "kspec/neighborhood.hpp"
#include "kspec/tile_table.hpp"
#include "sim/genome.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;
using kspec::KSpectrum;

seq::ReadSet tiny_reads() {
  seq::ReadSet set;
  set.reads.push_back({"a", "ACGTACGT", {}});
  set.reads.push_back({"b", "ACGTACGT", {}});
  set.reads.push_back({"c", "CGTACGTA", {}});
  return set;
}

TEST(KSpectrum, CountsSingleStrand) {
  const auto spec = KSpectrum::build(tiny_reads(), 4, /*both_strands=*/false);
  // "ACGTACGT" contributes ACGT (x2... per read), CGTA, GTAC, TACG, ACGT.
  const auto acgt = seq::encode_kmer("ACGT").value();
  // Two copies of read a/b: each has ACGT twice; read c has ACGT once.
  EXPECT_EQ(spec.count(acgt), 2u * 2u + 1u);
  EXPECT_EQ(spec.count(seq::encode_kmer("AAAA").value()), 0u);
  EXPECT_FALSE(spec.contains(seq::encode_kmer("AAAA").value()));
}

TEST(KSpectrum, BothStrandsAddsReverseComplements) {
  seq::ReadSet set;
  set.reads.push_back({"a", "AACC", {}});
  const auto spec = KSpectrum::build(set, 4, /*both_strands=*/true);
  EXPECT_TRUE(spec.contains(seq::encode_kmer("AACC").value()));
  EXPECT_TRUE(spec.contains(seq::encode_kmer("GGTT").value()));
  EXPECT_EQ(spec.total_instances(), 2u);
}

TEST(KSpectrum, SortedAndIndexable) {
  util::Rng rng(1);
  const auto genome = sim::random_sequence(5000, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto spec = KSpectrum::build_from_sequence(genome, 10);
  for (std::size_t i = 1; i < spec.size(); ++i) {
    ASSERT_LT(spec.code_at(i - 1), spec.code_at(i));
  }
  for (std::size_t i = 0; i < spec.size(); i += 97) {
    EXPECT_EQ(spec.index_of(spec.code_at(i)), static_cast<std::int64_t>(i));
  }
}

TEST(Neighborhood, EnumeratorFindsPlantedNeighbors) {
  std::vector<seq::KmerCode> codes;
  const auto base = seq::encode_kmer("ACGTACGTAC").value();
  codes.push_back(base);
  const auto n1 = seq::kmer_with_base(base, 10, 3, 0);  // 1 mutation
  const auto n2 = seq::kmer_with_base(n1, 10, 7, 1);    // 2 mutations
  codes.push_back(n1);
  codes.push_back(n2);
  codes.push_back(seq::encode_kmer("TTTTTTTTTT").value());
  const auto spec = KSpectrum::from_codes(codes, 10);

  kspec::CandidateEnumerator enumerator(spec);
  std::set<seq::KmerCode> found;
  enumerator.for_each_neighbor(base, 1,
                               [&](seq::KmerCode c, std::size_t) {
                                 found.insert(c);
                               });
  EXPECT_EQ(found, std::set<seq::KmerCode>{n1});
  found.clear();
  enumerator.for_each_neighbor(base, 2,
                               [&](seq::KmerCode c, std::size_t) {
                                 found.insert(c);
                               });
  EXPECT_EQ(found, (std::set<seq::KmerCode>{n1, n2}));
}

struct MaskedIndexCase {
  int k;
  int c;
  int d;
};

class MaskedIndexEquivalence
    : public ::testing::TestWithParam<MaskedIndexCase> {};

TEST_P(MaskedIndexEquivalence, MatchesEnumeratorOnRandomSpectra) {
  const auto [k, c, d] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(k * 100 + c * 10 + d));
  // Random spectrum with planted mutation clusters so neighborhoods are
  // nonempty.
  std::vector<seq::KmerCode> codes;
  const seq::KmerCode mask =
      k == 32 ? ~seq::KmerCode{0} : ((seq::KmerCode{1} << (2 * k)) - 1);
  for (int i = 0; i < 300; ++i) {
    const seq::KmerCode base = rng() & mask;
    codes.push_back(base);
    for (int m = 0; m < 3; ++m) {
      seq::KmerCode mut = base;
      for (int e = 0; e <= static_cast<int>(rng.below(2)); ++e) {
        mut = seq::kmer_with_base(
            mut, k, static_cast<int>(rng.below(static_cast<std::uint64_t>(k))),
            static_cast<std::uint8_t>(rng.below(4)));
      }
      codes.push_back(mut);
    }
  }
  const auto spec = KSpectrum::from_codes(codes, k);
  const kspec::CandidateEnumerator enumerator(spec);
  const kspec::MaskedSortIndex index(spec, c, d);

  for (std::size_t i = 0; i < spec.size(); i += 7) {
    const auto code = spec.code_at(i);
    std::set<seq::KmerCode> expect, got;
    enumerator.for_each_neighbor(code, d,
                                 [&](seq::KmerCode x, std::size_t) {
                                   expect.insert(x);
                                 });
    index.for_each_neighbor(code, [&](seq::KmerCode x, std::size_t) {
      got.insert(x);
    });
    ASSERT_EQ(got, expect) << "k=" << k << " c=" << c << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaskedIndexEquivalence,
    ::testing::Values(MaskedIndexCase{8, 4, 1}, MaskedIndexCase{12, 4, 1},
                      MaskedIndexCase{12, 6, 2}, MaskedIndexCase{13, 5, 2},
                      MaskedIndexCase{16, 4, 1}, MaskedIndexCase{16, 8, 2}));

TEST(MaskedSortIndex, RejectsBadParameters) {
  const auto spec = KSpectrum::from_codes(
      {seq::encode_kmer("ACGTACGT").value()}, 8);
  EXPECT_THROW(kspec::MaskedSortIndex(spec, 2, 2), std::invalid_argument);
  EXPECT_THROW(kspec::MaskedSortIndex(spec, 9, 1), std::invalid_argument);
}

TEST(HammingGraph, EdgesAreSymmetricAndBounded) {
  util::Rng rng(5);
  const auto genome =
      sim::random_sequence(3000, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto spec = KSpectrum::build_from_sequence(genome, 11);
  const kspec::HammingGraph graph(spec, 1);
  EXPECT_EQ(graph.num_vertices(), spec.size());
  for (std::size_t i = 0; i < spec.size(); i += 13) {
    for (const std::uint32_t j : graph.neighbors(i)) {
      const int hd = seq::kmer_hamming(spec.code_at(i), spec.code_at(j));
      ASSERT_EQ(hd, 1);
      // Symmetry: i must appear in j's list.
      const auto back = graph.neighbors(j);
      ASSERT_NE(std::find(back.begin(), back.end(),
                          static_cast<std::uint32_t>(i)),
                back.end());
    }
  }
}

TEST(TileTable, CountsOccurrences) {
  seq::ReadSet set;
  set.reads.push_back({"a", "ACGTACGTACGT", {}});  // 12 bases
  kspec::TileParams params;
  params.k = 4;
  params.overlap = 0;  // tile length 8
  params.both_strands = false;
  const auto table = kspec::TileTable::build(set, params);
  const auto t = seq::encode_kmer("ACGTACGT").value();
  EXPECT_EQ(table.counts(t).oc, 2u);  // positions 0 and 4
  EXPECT_EQ(table.counts(t).og, 2u);  // no quality filter -> og == oc
  EXPECT_EQ(table.counts(seq::encode_kmer("AAAAAAAA").value()).oc, 0u);
}

TEST(TileTable, QualityFilterSeparatesOg) {
  seq::ReadSet set;
  seq::Read r;
  r.id = "a";
  r.bases = "ACGTACGTACGT";
  r.quality.assign(12, 40);
  r.quality[5] = 5;  // low-quality base inside tiles covering position 5
  set.reads = {r};
  kspec::TileParams params;
  params.k = 4;
  params.quality_cutoff = 20;
  params.both_strands = false;
  const auto table = kspec::TileTable::build(set, params);
  const auto t0 = seq::encode_kmer("ACGTACGT").value();
  // Tile at position 0 covers base 5 (low quality); tile at position 4
  // also covers base 5. Both instances of this tile are low quality.
  EXPECT_EQ(table.counts(t0).oc, 2u);
  EXPECT_EQ(table.counts(t0).og, 0u);
  // Tile at position 3..10 "TACGTACG" misses nothing... covers 3-10 incl 5.
  // The only windows avoiding base 5 start at >= 6: no full window fits
  // after 6? positions 3 and 4 remain; all cover 5. Verify og histogram
  // total matches distinct tiles.
  EXPECT_EQ(table.og_histogram().total(), table.size());
}

TEST(TileTable, OverlapConcatenation) {
  seq::ReadSet set;
  set.reads.push_back({"a", "ACGTACGTAC", {}});
  kspec::TileParams params;
  params.k = 4;
  params.overlap = 2;  // tile length 6
  params.both_strands = false;
  const auto table = kspec::TileTable::build(set, params);
  EXPECT_EQ(table.tile_length(), 6);
  EXPECT_GT(table.counts(seq::encode_kmer("ACGTAC").value()).oc, 0u);
}

TEST(TileTable, RejectsInvalidParams) {
  seq::ReadSet set;
  kspec::TileParams params;
  params.k = 20;
  params.overlap = 2;  // tile length 38 > 32
  EXPECT_THROW(kspec::TileTable::build(set, params), std::invalid_argument);
}

TEST(TileTable, BothStrandsCountRevcompTiles) {
  seq::ReadSet set;
  set.reads.push_back({"a", "AACCGGTT", {}});
  kspec::TileParams params;
  params.k = 4;
  params.both_strands = true;
  const auto table = kspec::TileTable::build(set, params);
  // "AACCGGTT" is its own reverse complement, so its single 8-base tile
  // counts twice.
  EXPECT_EQ(table.counts(seq::encode_kmer("AACCGGTT").value()).oc, 2u);
}

}  // namespace
