#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "kspec/hamming_graph.hpp"
#include "kspec/kspectrum.hpp"
#include "kspec/neighborhood.hpp"
#include "kspec/radix.hpp"
#include "kspec/tile_table.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ngs;
using kspec::KSpectrum;

seq::ReadSet tiny_reads() {
  seq::ReadSet set;
  set.reads.push_back({"a", "ACGTACGT", {}});
  set.reads.push_back({"b", "ACGTACGT", {}});
  set.reads.push_back({"c", "CGTACGTA", {}});
  return set;
}

TEST(KSpectrum, CountsSingleStrand) {
  const auto spec = KSpectrum::build(tiny_reads(), 4, /*both_strands=*/false);
  // "ACGTACGT" contributes ACGT (x2... per read), CGTA, GTAC, TACG, ACGT.
  const auto acgt = seq::encode_kmer("ACGT").value();
  // Two copies of read a/b: each has ACGT twice; read c has ACGT once.
  EXPECT_EQ(spec.count(acgt), 2u * 2u + 1u);
  EXPECT_EQ(spec.count(seq::encode_kmer("AAAA").value()), 0u);
  EXPECT_FALSE(spec.contains(seq::encode_kmer("AAAA").value()));
}

TEST(KSpectrum, BothStrandsAddsReverseComplements) {
  seq::ReadSet set;
  set.reads.push_back({"a", "AACC", {}});
  const auto spec = KSpectrum::build(set, 4, /*both_strands=*/true);
  EXPECT_TRUE(spec.contains(seq::encode_kmer("AACC").value()));
  EXPECT_TRUE(spec.contains(seq::encode_kmer("GGTT").value()));
  EXPECT_EQ(spec.total_instances(), 2u);
}

TEST(KSpectrum, SortedAndIndexable) {
  util::Rng rng(1);
  const auto genome = sim::random_sequence(5000, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto spec = KSpectrum::build_from_sequence(genome, 10);
  for (std::size_t i = 1; i < spec.size(); ++i) {
    ASSERT_LT(spec.code_at(i - 1), spec.code_at(i));
  }
  for (std::size_t i = 0; i < spec.size(); i += 97) {
    EXPECT_EQ(spec.index_of(spec.code_at(i)), static_cast<std::int64_t>(i));
  }
}

seq::ReadSet simulated_reads(std::uint64_t seed, std::size_t genome_len) {
  util::Rng rng(seed);
  sim::GenomeSpec gspec;
  gspec.length = genome_len;
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.02);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 20.0;
  return sim::simulate_reads(genome.sequence, model, cfg, rng).reads;
}

void expect_byte_identical(const KSpectrum& a, const KSpectrum& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.total_instances(), b.total_instances());
  ASSERT_TRUE(std::equal(a.codes().begin(), a.codes().end(),
                         b.codes().begin(), b.codes().end()));
  ASSERT_TRUE(std::equal(a.counts().begin(), a.counts().end(),
                         b.counts().begin(), b.counts().end()));
}

TEST(RadixBuild, ByteIdenticalToSerialAcrossThreadCounts) {
  const auto reads = simulated_reads(11, 15000);
  for (const bool both : {false, true}) {
    kspec::SpectrumBuildOptions serial;
    serial.threads = 1;
    const auto reference = KSpectrum::build(reads, 13, both, serial);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{3},
                                      std::size_t{8}}) {
      for (const int radix_bits : {-1, 0, 3, 8}) {
        kspec::SpectrumBuildOptions opts;
        opts.threads = threads;
        opts.radix_bits = radix_bits;
        const auto parallel = KSpectrum::build(reads, 13, both, opts);
        SCOPED_TRACE(::testing::Message()
                     << "threads=" << threads << " radix_bits=" << radix_bits
                     << " both=" << both);
        expect_byte_identical(parallel, reference);
      }
    }
  }
}

TEST(RadixBuild, DegenerateInputs) {
  kspec::SpectrumBuildOptions parallel;
  parallel.threads = 4;
  parallel.radix_bits = 6;

  seq::ReadSet empty;
  expect_byte_identical(KSpectrum::build(empty, 13, true, parallel),
                        KSpectrum::build(empty, 13, true, {.threads = 1}));

  seq::ReadSet short_read;  // shorter than k: zero windows
  short_read.reads.push_back({"s", "ACGT", {}});
  const auto spec = KSpectrum::build(short_read, 13, true, parallel);
  EXPECT_TRUE(spec.empty());
  EXPECT_EQ(spec.total_instances(), 0u);

  seq::ReadSet one;
  one.reads.push_back({"a", "ACGTACGTACGTACGT", {}});
  expect_byte_identical(KSpectrum::build(one, 13, true, parallel),
                        KSpectrum::build(one, 13, true, {.threads = 1}));

  seq::ReadSet dup;  // every instance identical: a single fat bucket
  for (int i = 0; i < 64; ++i) dup.reads.push_back({"d", "AAAAAAAAAAAAA", {}});
  const auto dups = KSpectrum::build(dup, 13, false, parallel);
  ASSERT_EQ(dups.size(), 1u);
  EXPECT_EQ(dups.count_at(0), 64u);
  expect_byte_identical(dups, KSpectrum::build(dup, 13, false, {.threads = 1}));
}

TEST(RadixBuild, ExternalPoolAndSortOnlyEntryPoint) {
  util::ThreadPool pool(3);
  util::Rng rng(99);
  std::vector<seq::KmerCode> codes;
  const seq::KmerCode mask = (seq::KmerCode{1} << 26) - 1;
  for (int i = 0; i < 50000; ++i) codes.push_back(rng() & mask);
  auto expected = codes;
  std::sort(expected.begin(), expected.end());

  kspec::RadixSortOptions opts;
  opts.pool = &pool;
  for (const int bits : {-1, 0, 5, 11}) {
    auto sorted = codes;
    opts.radix_bits = bits;
    kspec::radix_sort_codes(sorted, 13, opts);
    ASSERT_EQ(sorted, expected) << "radix_bits=" << bits;
  }
}

TEST(PrefixIndex, AgreesWithPlainLowerBound) {
  const auto reads = simulated_reads(23, 20000);
  auto spec = KSpectrum::build(reads, 13, true);
  ASSERT_GT(spec.prefix_index_bits(), 0);  // auto index kicks in

  util::Rng rng(7);
  const seq::KmerCode mask = (seq::KmerCode{1} << 26) - 1;
  std::vector<seq::KmerCode> queries;
  for (std::size_t i = 0; i < spec.size(); i += 37) {
    queries.push_back(spec.code_at(i));  // guaranteed hits
  }
  for (int i = 0; i < 2000; ++i) queries.push_back(rng() & mask);  // misses too

  const auto codes = spec.codes();
  auto plain_index_of = [&](seq::KmerCode code) -> std::int64_t {
    const auto it = std::lower_bound(codes.begin(), codes.end(), code);
    if (it == codes.end() || *it != code) return -1;
    return static_cast<std::int64_t>(it - codes.begin());
  };

  for (const int bits : {-1, 0, 1, 4, 10, 16}) {
    spec.rebuild_prefix_index(bits);
    for (const auto q : queries) {
      ASSERT_EQ(spec.index_of(q), plain_index_of(q))
          << "bits=" << bits << " query=" << q;
    }
  }
}

TEST(PrefixIndex, DisabledIndexReportsZeroWidth) {
  const auto spec = KSpectrum::from_codes(
      {seq::encode_kmer("ACGT").value(), seq::encode_kmer("TTTT").value()}, 4);
  // Tiny spectrum: the auto heuristic leaves the index off.
  EXPECT_EQ(spec.prefix_index_bits(), 0);
  EXPECT_EQ(spec.prefix_index_bytes(), 0u);
  EXPECT_TRUE(spec.contains(seq::encode_kmer("TTTT").value()));
}

TEST(Neighborhood, EnumeratorFindsPlantedNeighbors) {
  std::vector<seq::KmerCode> codes;
  const auto base = seq::encode_kmer("ACGTACGTAC").value();
  codes.push_back(base);
  const auto n1 = seq::kmer_with_base(base, 10, 3, 0);  // 1 mutation
  const auto n2 = seq::kmer_with_base(n1, 10, 7, 1);    // 2 mutations
  codes.push_back(n1);
  codes.push_back(n2);
  codes.push_back(seq::encode_kmer("TTTTTTTTTT").value());
  const auto spec = KSpectrum::from_codes(codes, 10);

  kspec::CandidateEnumerator enumerator(spec);
  std::set<seq::KmerCode> found;
  enumerator.for_each_neighbor(base, 1,
                               [&](seq::KmerCode c, std::size_t) {
                                 found.insert(c);
                               });
  EXPECT_EQ(found, std::set<seq::KmerCode>{n1});
  found.clear();
  enumerator.for_each_neighbor(base, 2,
                               [&](seq::KmerCode c, std::size_t) {
                                 found.insert(c);
                               });
  EXPECT_EQ(found, (std::set<seq::KmerCode>{n1, n2}));
}

struct MaskedIndexCase {
  int k;
  int c;
  int d;
};

class MaskedIndexEquivalence
    : public ::testing::TestWithParam<MaskedIndexCase> {};

TEST_P(MaskedIndexEquivalence, MatchesEnumeratorOnRandomSpectra) {
  const auto [k, c, d] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(k * 100 + c * 10 + d));
  // Random spectrum with planted mutation clusters so neighborhoods are
  // nonempty.
  std::vector<seq::KmerCode> codes;
  const seq::KmerCode mask =
      k == 32 ? ~seq::KmerCode{0} : ((seq::KmerCode{1} << (2 * k)) - 1);
  for (int i = 0; i < 300; ++i) {
    const seq::KmerCode base = rng() & mask;
    codes.push_back(base);
    for (int m = 0; m < 3; ++m) {
      seq::KmerCode mut = base;
      for (int e = 0; e <= static_cast<int>(rng.below(2)); ++e) {
        mut = seq::kmer_with_base(
            mut, k, static_cast<int>(rng.below(static_cast<std::uint64_t>(k))),
            static_cast<std::uint8_t>(rng.below(4)));
      }
      codes.push_back(mut);
    }
  }
  const auto spec = KSpectrum::from_codes(codes, k);
  const kspec::CandidateEnumerator enumerator(spec);
  const kspec::MaskedSortIndex index(spec, c, d);

  for (std::size_t i = 0; i < spec.size(); i += 7) {
    const auto code = spec.code_at(i);
    std::set<seq::KmerCode> expect, got;
    enumerator.for_each_neighbor(code, d,
                                 [&](seq::KmerCode x, std::size_t) {
                                   expect.insert(x);
                                 });
    index.for_each_neighbor(code, [&](seq::KmerCode x, std::size_t) {
      got.insert(x);
    });
    ASSERT_EQ(got, expect) << "k=" << k << " c=" << c << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaskedIndexEquivalence,
    ::testing::Values(MaskedIndexCase{8, 4, 1}, MaskedIndexCase{12, 4, 1},
                      MaskedIndexCase{12, 6, 2}, MaskedIndexCase{13, 5, 2},
                      MaskedIndexCase{16, 4, 1}, MaskedIndexCase{16, 8, 2}));

TEST(MaskedSortIndex, RejectsBadParameters) {
  const auto spec = KSpectrum::from_codes(
      {seq::encode_kmer("ACGTACGT").value()}, 8);
  EXPECT_THROW(kspec::MaskedSortIndex(spec, 2, 2), std::invalid_argument);
  EXPECT_THROW(kspec::MaskedSortIndex(spec, 9, 1), std::invalid_argument);
}

TEST(HammingGraph, EdgesAreSymmetricAndBounded) {
  util::Rng rng(5);
  const auto genome =
      sim::random_sequence(3000, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto spec = KSpectrum::build_from_sequence(genome, 11);
  const kspec::HammingGraph graph(spec, 1);
  EXPECT_EQ(graph.num_vertices(), spec.size());
  for (std::size_t i = 0; i < spec.size(); i += 13) {
    for (const std::uint32_t j : graph.neighbors(i)) {
      const int hd = seq::kmer_hamming(spec.code_at(i), spec.code_at(j));
      ASSERT_EQ(hd, 1);
      // Symmetry: i must appear in j's list.
      const auto back = graph.neighbors(j);
      ASSERT_NE(std::find(back.begin(), back.end(),
                          static_cast<std::uint32_t>(i)),
                back.end());
    }
  }
}

TEST(TileTable, CountsOccurrences) {
  seq::ReadSet set;
  set.reads.push_back({"a", "ACGTACGTACGT", {}});  // 12 bases
  kspec::TileParams params;
  params.k = 4;
  params.overlap = 0;  // tile length 8
  params.both_strands = false;
  const auto table = kspec::TileTable::build(set, params);
  const auto t = seq::encode_kmer("ACGTACGT").value();
  EXPECT_EQ(table.counts(t).oc, 2u);  // positions 0 and 4
  EXPECT_EQ(table.counts(t).og, 2u);  // no quality filter -> og == oc
  EXPECT_EQ(table.counts(seq::encode_kmer("AAAAAAAA").value()).oc, 0u);
}

TEST(TileTable, QualityFilterSeparatesOg) {
  seq::ReadSet set;
  seq::Read r;
  r.id = "a";
  r.bases = "ACGTACGTACGT";
  r.quality.assign(12, 40);
  r.quality[5] = 5;  // low-quality base inside tiles covering position 5
  set.reads = {r};
  kspec::TileParams params;
  params.k = 4;
  params.quality_cutoff = 20;
  params.both_strands = false;
  const auto table = kspec::TileTable::build(set, params);
  const auto t0 = seq::encode_kmer("ACGTACGT").value();
  // Tile at position 0 covers base 5 (low quality); tile at position 4
  // also covers base 5. Both instances of this tile are low quality.
  EXPECT_EQ(table.counts(t0).oc, 2u);
  EXPECT_EQ(table.counts(t0).og, 0u);
  // Tile at position 3..10 "TACGTACG" misses nothing... covers 3-10 incl 5.
  // The only windows avoiding base 5 start at >= 6: no full window fits
  // after 6? positions 3 and 4 remain; all cover 5. Verify og histogram
  // total matches distinct tiles.
  EXPECT_EQ(table.og_histogram().total(), table.size());
}

TEST(TileTable, OverlapConcatenation) {
  seq::ReadSet set;
  set.reads.push_back({"a", "ACGTACGTAC", {}});
  kspec::TileParams params;
  params.k = 4;
  params.overlap = 2;  // tile length 6
  params.both_strands = false;
  const auto table = kspec::TileTable::build(set, params);
  EXPECT_EQ(table.tile_length(), 6);
  EXPECT_GT(table.counts(seq::encode_kmer("ACGTAC").value()).oc, 0u);
}

TEST(TileTable, RejectsInvalidParams) {
  seq::ReadSet set;
  kspec::TileParams params;
  params.k = 20;
  params.overlap = 2;  // tile length 38 > 32
  EXPECT_THROW(kspec::TileTable::build(set, params), std::invalid_argument);
}

TEST(TileTable, BothStrandsCountRevcompTiles) {
  seq::ReadSet set;
  set.reads.push_back({"a", "AACCGGTT", {}});
  kspec::TileParams params;
  params.k = 4;
  params.both_strands = true;
  const auto table = kspec::TileTable::build(set, params);
  // "AACCGGTT" is its own reverse complement, so its single 8-base tile
  // counts twice.
  EXPECT_EQ(table.counts(seq::encode_kmer("AACCGGTT").value()).oc, 2u);
}

}  // namespace
