#include <gtest/gtest.h>

#include "eval/correction_metrics.hpp"
#include "shrec/shrec.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/flat_counter.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;

TEST(FlatCounter, BasicCounting) {
  util::FlatCounter c(4);
  c.add(10);
  c.add(10);
  c.add(20, 5);
  EXPECT_EQ(c.count(10), 2u);
  EXPECT_EQ(c.count(20), 5u);
  EXPECT_EQ(c.count(30), 0u);
  EXPECT_EQ(c.distinct(), 2u);
}

TEST(FlatCounter, GrowsPastInitialCapacity) {
  util::FlatCounter c(2);
  for (std::uint64_t i = 0; i < 1000; ++i) c.add(i * 7919);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(c.count(i * 7919), 1u) << i;
  }
  EXPECT_EQ(c.distinct(), 1000u);
}

TEST(FlatCounter, SentinelKey) {
  util::FlatCounter c(4);
  c.add(~std::uint64_t{0}, 3);
  EXPECT_EQ(c.count(~std::uint64_t{0}), 3u);
  EXPECT_EQ(c.distinct(), 1u);
}

TEST(FlatCounter, ForEachVisitsAll) {
  util::FlatCounter c(8);
  c.add(1, 2);
  c.add(2, 3);
  std::uint64_t total = 0;
  c.for_each([&](std::uint64_t, std::uint32_t count) { total += count; });
  EXPECT_EQ(total, 5u);
}

class ShrecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(77);
    sim::GenomeSpec gspec;
    gspec.length = 20000;
    genome_ = sim::simulate_genome(gspec, rng).sequence;
    const auto model = sim::ErrorModel::illumina(36, 0.008);
    sim::ReadSimConfig cfg;
    cfg.read_length = 36;
    cfg.coverage = 60.0;
    sim_ = sim::simulate_reads(genome_, model, cfg, rng);
  }
  std::string genome_;
  sim::SimulatedReads sim_;
};

TEST_F(ShrecTest, RequiresGenomeLength) {
  shrec::ShrecParams p;
  p.genome_length = 0;
  EXPECT_THROW(shrec::ShrecCorrector{p}, std::invalid_argument);
}

TEST_F(ShrecTest, RemovesErrorsAtHighCoverage) {
  shrec::ShrecParams p;
  p.genome_length = genome_.size();
  shrec::ShrecCorrector corrector(p);
  shrec::ShrecStats stats;
  const auto corrected = corrector.correct_all(sim_.reads, stats);
  const auto metrics = eval::evaluate_correction(sim_.reads, corrected);
  EXPECT_GT(metrics.gain(), 0.3)
      << "TP=" << metrics.tp << " FP=" << metrics.fp << " FN=" << metrics.fn;
  EXPECT_GT(metrics.specificity(), 0.99);
  EXPECT_GT(stats.corrections_applied, 0u);
}

TEST_F(ShrecTest, CleanDataMostlyUntouched) {
  util::Rng rng(78);
  const auto model = sim::ErrorModel::illumina(36, 1e-7);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 40.0;
  const auto clean = sim::simulate_reads(genome_, model, cfg, rng);
  shrec::ShrecParams p;
  p.genome_length = genome_.size();
  shrec::ShrecCorrector corrector(p);
  shrec::ShrecStats stats;
  const auto corrected = corrector.correct_all(clean.reads, stats);
  const auto metrics = eval::evaluate_correction(clean.reads, corrected);
  EXPECT_GT(metrics.specificity(), 0.999);
}

TEST_F(ShrecTest, EmptyInputIsFine) {
  shrec::ShrecParams p;
  p.genome_length = 1000;
  shrec::ShrecCorrector corrector(p);
  shrec::ShrecStats stats;
  seq::ReadSet empty;
  EXPECT_TRUE(corrector.correct_all(empty, stats).empty());
}

TEST_F(ShrecTest, StricterAlphaFlagsFewerPositions) {
  shrec::ShrecParams lenient;
  lenient.genome_length = genome_.size();
  lenient.alpha = 2.0;
  shrec::ShrecParams strict = lenient;
  strict.alpha = 6.0;
  shrec::ShrecStats s_len, s_str;
  shrec::ShrecCorrector(lenient).correct_all(sim_.reads, s_len);
  shrec::ShrecCorrector(strict).correct_all(sim_.reads, s_str);
  EXPECT_LE(s_str.flagged_positions, s_len.flagged_positions);
}

}  // namespace
