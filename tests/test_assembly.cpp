#include <gtest/gtest.h>

#include <algorithm>

#include "assembly/debruijn.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;

seq::ReadSet reads_from(const std::vector<std::string>& seqs) {
  seq::ReadSet set;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    set.reads.push_back({"r" + std::to_string(i), seqs[i], {}});
  }
  return set;
}

TEST(DeBruijn, SingleSequenceYieldsSingleUnitig) {
  // Error-free tiling reads over a repeat-free sequence reconstruct it.
  util::Rng rng(5);
  const auto genome =
      sim::random_sequence(300, {0.25, 0.25, 0.25, 0.25}, rng);
  std::vector<std::string> reads;
  for (std::size_t i = 0; i + 40 <= genome.size(); i += 5) {
    reads.push_back(genome.substr(i, 40));
  }
  assembly::DeBruijnParams params;
  params.k = 21;
  params.min_kmer_count = 1;
  const auto graph =
      assembly::DeBruijnGraph::build(reads_from(reads), params);
  const auto unitigs = graph.unitigs();
  ASSERT_EQ(unitigs.size(), 1u);
  const std::string rc = seq::reverse_complement(genome);
  EXPECT_TRUE(unitigs[0] == genome || unitigs[0] == rc);
}

TEST(DeBruijn, RepeatBreaksUnitigs) {
  // A sequence of the form A R B R C (R repeated) cannot assemble into
  // one unitig at k shorter than R.
  util::Rng rng(6);
  const auto a = sim::random_sequence(150, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto r = sim::random_sequence(60, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto b = sim::random_sequence(150, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto c = sim::random_sequence(150, {0.25, 0.25, 0.25, 0.25}, rng);
  const std::string genome = a + r + b + r + c;
  std::vector<std::string> reads;
  for (std::size_t i = 0; i + 40 <= genome.size(); i += 3) {
    reads.push_back(genome.substr(i, 40));
  }
  assembly::DeBruijnParams params;
  params.k = 21;
  params.min_kmer_count = 1;
  const auto graph =
      assembly::DeBruijnGraph::build(reads_from(reads), params);
  EXPECT_GT(graph.unitigs().size(), 2u);
}

TEST(DeBruijn, WeakKmerFilterDropsErrors) {
  util::Rng rng(7);
  const auto genome =
      sim::random_sequence(20000, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 40.0;
  const auto run = sim::simulate_reads(genome, model, cfg, rng);

  assembly::DeBruijnParams strict;
  strict.k = 21;
  strict.min_kmer_count = 3;
  assembly::DeBruijnParams lax = strict;
  lax.min_kmer_count = 1;
  const auto strict_graph =
      assembly::DeBruijnGraph::build(run.reads, strict);
  const auto lax_graph = assembly::DeBruijnGraph::build(run.reads, lax);
  // Error kmers are mostly singletons: the filter shrinks the graph a lot.
  EXPECT_LT(strict_graph.num_edges() * 2, lax_graph.num_edges());
}

TEST(DeBruijn, Degrees) {
  // Two branches out of one node: AAAC and AAAG share prefix AAA.
  const auto set = reads_from({"AAACT", "AAAGT"});
  assembly::DeBruijnParams params;
  params.k = 4;
  params.min_kmer_count = 1;
  const auto graph = assembly::DeBruijnGraph::build(set, params);
  const auto node = seq::encode_kmer("AAA").value();
  EXPECT_EQ(graph.out_degree(node), 2);
}

TEST(AssemblyStats, N50Computation) {
  const std::vector<std::string> contigs = {
      std::string(100, 'A'), std::string(200, 'A'), std::string(50, 'A'),
      std::string(700, 'A')};
  const auto stats = assembly::assembly_stats(contigs);
  EXPECT_EQ(stats.num_contigs, 4u);
  EXPECT_EQ(stats.total_length, 1050u);
  EXPECT_EQ(stats.max_length, 700u);
  EXPECT_EQ(stats.n50, 700u);  // 700 alone covers >= 525
  const auto filtered = assembly::assembly_stats(contigs, 100);
  EXPECT_EQ(filtered.num_contigs, 3u);
}

TEST(AssemblyStats, EmptyInput) {
  const auto stats = assembly::assembly_stats({});
  EXPECT_EQ(stats.num_contigs, 0u);
  EXPECT_EQ(stats.n50, 0u);
}

TEST(AssemblyEval, PerfectContigsScorePerfect) {
  util::Rng rng(8);
  const auto genome =
      sim::random_sequence(5000, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto eval = assembly::evaluate_contigs({genome}, genome, 21);
  EXPECT_DOUBLE_EQ(eval.contig_kmer_accuracy, 1.0);
  EXPECT_GT(eval.genome_kmers_covered, 0.99);
  EXPECT_EQ(eval.spurious_contig_kmers, 0u);
}

TEST(AssemblyEval, SpuriousKmersAreCounted) {
  util::Rng rng(9);
  const auto genome =
      sim::random_sequence(5000, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto junk = sim::random_sequence(200, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto eval =
      assembly::evaluate_contigs({genome.substr(0, 1000), junk}, genome, 21);
  EXPECT_GT(eval.spurious_contig_kmers, 100u);
  EXPECT_LT(eval.genome_kmers_covered, 0.5);
}

}  // namespace
