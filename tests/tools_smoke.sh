#!/usr/bin/env bash
# End-to-end smoke test of the command-line tools: simulate a small run,
# correct it with two methods, cluster a FASTA, and sanity-check outputs.
set -euo pipefail

BIN_DIR="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$BIN_DIR/ngs_simulate" \
  --genome-length 20000 --coverage 30 --error-rate 0.01 --seed 7 \
  --reads "$WORK/reads.fastq" --genome "$WORK/genome.fasta" \
  --truth "$WORK/truth.tsv"
test -s "$WORK/reads.fastq"
test -s "$WORK/genome.fasta"
test -s "$WORK/truth.tsv"

# Round-trip every method the registry advertises.
methods=$("$BIN_DIR/ngs_correct" --method list | awk '{print $1}')
[ -n "$methods" ]
echo "$methods" | grep -qx reptile
in_lines=$(wc -l < "$WORK/reads.fastq")
for method in $methods; do
  "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
    --out "$WORK/corrected_$method.fastq" \
    --method "$method" --genome-length 20000 \
    --threads 2 --batch-size 1000
  test -s "$WORK/corrected_$method.fastq"
  # Same number of records in and out.
  out_lines=$(wc -l < "$WORK/corrected_$method.fastq")
  [ "$in_lines" = "$out_lines" ]
done

# Cluster the simulated reads as FASTA (exercises the FASTA path).
head -4000 "$WORK/reads.fastq" | awk 'NR%4==1{sub(/^@/,">");print} NR%4==2{print}' \
  > "$WORK/reads.fasta"
"$BIN_DIR/ngs_cluster" --in "$WORK/reads.fasta" --thresholds 0.9 \
  --out "$WORK/clusters.tsv"
test -s "$WORK/clusters.tsv"
# Header plus one row per sequence.
rows=$(($(wc -l < "$WORK/clusters.tsv") - 1))
seqs=$(grep -c '^>' "$WORK/reads.fasta")
[ "$rows" = "$seqs" ]

# Unknown method fails loudly.
if "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" --method bogus \
     >/dev/null 2>&1; then
  echo "expected failure for bogus method" >&2
  exit 1
fi

echo "tools smoke test passed"
