#!/usr/bin/env bash
# End-to-end smoke test of the command-line tools: simulate a small run,
# correct it with two methods, cluster a FASTA, round-trip a persistent
# spectrum index through ngs_index and ngs_correct, and sanity-check
# outputs.
set -euo pipefail

BIN_DIR="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$BIN_DIR/ngs_simulate" \
  --genome-length 20000 --coverage 30 --error-rate 0.01 --seed 7 \
  --reads "$WORK/reads.fastq" --genome "$WORK/genome.fasta" \
  --truth "$WORK/truth.tsv"
test -s "$WORK/reads.fastq"
test -s "$WORK/genome.fasta"
test -s "$WORK/truth.tsv"

# Round-trip every method the registry advertises.
methods=$("$BIN_DIR/ngs_correct" --method list | awk '{print $1}')
[ -n "$methods" ]
echo "$methods" | grep -qx reptile
in_lines=$(wc -l < "$WORK/reads.fastq")
for method in $methods; do
  "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
    --out "$WORK/corrected_$method.fastq" \
    --method "$method" --genome-length 20000 \
    --threads 2 --batch-size 1000
  test -s "$WORK/corrected_$method.fastq"
  # Same number of records in and out.
  out_lines=$(wc -l < "$WORK/corrected_$method.fastq")
  [ "$in_lines" = "$out_lines" ]
done

# Cluster the simulated reads as FASTA (exercises the FASTA path).
head -4000 "$WORK/reads.fastq" | awk 'NR%4==1{sub(/^@/,">");print} NR%4==2{print}' \
  > "$WORK/reads.fasta"
"$BIN_DIR/ngs_cluster" --in "$WORK/reads.fasta" --thresholds 0.9 \
  --out "$WORK/clusters.tsv"
test -s "$WORK/clusters.tsv"
# Header plus one row per sequence.
rows=$(($(wc -l < "$WORK/clusters.tsv") - 1))
seqs=$(grep -c '^>' "$WORK/reads.fasta")
[ "$rows" = "$seqs" ]

# Unknown method fails loudly.
if "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" --method bogus \
     >/dev/null 2>&1; then
  echo "expected failure for bogus method" >&2
  exit 1
fi

# Persistent spectrum index: build/info/verify round-trip.
"$BIN_DIR/ngs_index" build --in "$WORK/reads.fastq" \
  --out "$WORK/spectrum.ngsx" --k 12 --both-strands 1 --threads 2
test -s "$WORK/spectrum.ngsx"
"$BIN_DIR/ngs_index" info --index "$WORK/spectrum.ngsx" \
  | grep -q "k: 12"
"$BIN_DIR/ngs_index" verify --index "$WORK/spectrum.ngsx"

# A corrupted copy must fail verification (and only verification hits
# the payload pages, so flip a byte deep inside the file).
cp "$WORK/spectrum.ngsx" "$WORK/corrupt.ngsx"
printf '\xff' | dd of="$WORK/corrupt.ngsx" bs=1 seek=300 count=1 \
  conv=notrunc status=none
if "$BIN_DIR/ngs_index" verify --index "$WORK/corrupt.ngsx" \
     >/dev/null 2>&1; then
  echo "expected verify failure for corrupted index" >&2
  exit 1
fi

# Build-once/correct-many: --save-index then --load-index must produce
# byte-identical corrected output (sap uses the k=12 spectrum).
"$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/corrected_saved.fastq" --method sap --genome-length 20000 \
  --threads 2 --batch-size 1000 --save-index "$WORK/sap.ngsx"
test -s "$WORK/sap.ngsx"
"$BIN_DIR/ngs_index" verify --index "$WORK/sap.ngsx"
"$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/corrected_loaded.fastq" --method sap --genome-length 20000 \
  --threads 2 --batch-size 1000 --load-index "$WORK/sap.ngsx"
cmp "$WORK/corrected_saved.fastq" "$WORK/corrected_loaded.fastq"
cmp "$WORK/corrected_saved.fastq" "$WORK/corrected_sap.fastq"

echo "tools smoke test passed"
