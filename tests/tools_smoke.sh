#!/usr/bin/env bash
# End-to-end smoke test of the command-line tools: simulate a small run,
# correct it with two methods, cluster a FASTA, round-trip a persistent
# spectrum index through ngs_index and ngs_correct, sanity-check
# outputs, and assert the documented exit codes on every failure path
# (0 success, 2 usage/config, 3 input/parse, 4 index, 1 internal).
set -euo pipefail

BIN_DIR="$1"
# Second argument `service` runs only the correction-service scenario
# (the ctest `service` label, so the asan preset can drive the daemon
# paths without the full smoke).
MODE="${2:-all}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# expect_exit <code> <cmd...>: the command must fail with exactly <code>;
# stderr is captured to $WORK/stderr.txt for message assertions.
expect_exit() {
  local want="$1"
  shift
  local got=0
  "$@" >/dev/null 2>"$WORK/stderr.txt" || got=$?
  if [ "$got" != "$want" ]; then
    echo "expected exit $want, got $got from: $*" >&2
    cat "$WORK/stderr.txt" >&2
    exit 1
  fi
  # Every failure path must say something on stderr.
  test -s "$WORK/stderr.txt"
}

"$BIN_DIR/ngs_simulate" \
  --genome-length 20000 --coverage 30 --error-rate 0.01 --seed 7 \
  --reads "$WORK/reads.fastq" --genome "$WORK/genome.fasta" \
  --truth "$WORK/truth.tsv"
test -s "$WORK/reads.fastq"
test -s "$WORK/genome.fasta"
test -s "$WORK/truth.tsv"

# --- correction service: daemon + client round trips -------------------
# Byte-identity through the daemon for a streaming (sap) and a buffered
# (reptile) method at 1, 2, and 4 worker threads; SIGHUP hot reload and
# the RELOAD verb bump the epoch without dropping the daemon; clean
# SIGTERM shutdown exits 0; daemon and client failure paths carry the
# documented exit codes. Requires $WORK/corrected_sap.fastq,
# $WORK/corrected_reptile.fastq, and $WORK/sap.ngsx.
service_scenario() {
  local sock="$WORK/ngs.sock"

  for t in 1 2 4; do
    "$BIN_DIR/ngs_correctd" --socket "$sock" --index "$WORK/sap.ngsx" \
      --reads "$WORK/reads.fastq" --threads "$t" \
      > "$WORK/daemon.log" 2>&1 &
    local daemon=$!
    # Readiness: the daemon prints its listening line once serving.
    for _ in $(seq 1 100); do
      grep -q "listening on" "$WORK/daemon.log" 2>/dev/null && break
      sleep 0.1
    done
    grep -q "listening on" "$WORK/daemon.log"

    # Served output is byte-identical to the offline runs.
    "$BIN_DIR/ngs_correct_client" --socket "$sock" \
      --in "$WORK/reads.fastq" --out "$WORK/svc_sap_$t.fastq" \
      --method sap --genome-length 20000 2>/dev/null
    cmp "$WORK/svc_sap_$t.fastq" "$WORK/corrected_sap.fastq"
    "$BIN_DIR/ngs_correct_client" --socket "$sock" \
      --in "$WORK/reads.fastq" --out "$WORK/svc_reptile_$t.fastq" \
      --method reptile --genome-length 20000 2>/dev/null
    cmp "$WORK/svc_reptile_$t.fastq" "$WORK/corrected_reptile.fastq"

    if [ "$t" = 2 ]; then
      "$BIN_DIR/ngs_correct_client" --socket "$sock" --mode stats \
        > "$WORK/svc_stats.txt"
      grep -q "^epoch=1$" "$WORK/svc_stats.txt"
      grep -q "^reads_corrected=" "$WORK/svc_stats.txt"

      # SIGHUP re-verifies and hot-swaps the indexes: epoch 1 -> 2.
      kill -HUP "$daemon"
      for _ in $(seq 1 100); do
        "$BIN_DIR/ngs_correct_client" --socket "$sock" --mode stats \
          > "$WORK/svc_stats.txt" 2>/dev/null || true
        grep -q "^epoch=2$" "$WORK/svc_stats.txt" && break
        sleep 0.1
      done
      grep -q "^epoch=2$" "$WORK/svc_stats.txt"
      # The RELOAD verb does the same inline: epoch 2 -> 3.
      "$BIN_DIR/ngs_correct_client" --socket "$sock" --mode reload \
        | grep -q "epoch 3"
      # Corrected bytes are unchanged across reloads (same index files).
      "$BIN_DIR/ngs_correct_client" --socket "$sock" \
        --in "$WORK/reads.fastq" --out "$WORK/svc_reload.fastq" \
        --method sap --genome-length 20000 2>/dev/null
      cmp "$WORK/svc_reload.fastq" "$WORK/corrected_sap.fastq"

      # Client failure paths: missing --socket -> 2, bad --mode -> 2,
      # daemon not running -> 3, method the daemon rejects -> 2.
      expect_exit 2 "$BIN_DIR/ngs_correct_client" --mode stats
      expect_exit 2 "$BIN_DIR/ngs_correct_client" --socket "$sock" \
        --mode sideways
      expect_exit 3 "$BIN_DIR/ngs_correct_client" \
        --socket "$WORK/no-such.sock" --mode stats
      grep -q "running" "$WORK/stderr.txt"
      expect_exit 2 "$BIN_DIR/ngs_correct_client" --socket "$sock" \
        --in "$WORK/reads.fastq" --out "$WORK/x.fastq" --method bogus
    fi

    # Clean shutdown on SIGTERM: exit 0, socket file removed.
    kill -TERM "$daemon"
    local code=0
    wait "$daemon" || code=$?
    [ "$code" = 0 ]
    test ! -e "$sock"
  done

  # Daemon startup failures: missing index file -> 4, a declared k that
  # contradicts the file header -> 2, nothing to serve -> 2.
  expect_exit 4 "$BIN_DIR/ngs_correctd" --socket "$sock" \
    --index "$WORK/nonexistent.ngsx"
  expect_exit 2 "$BIN_DIR/ngs_correctd" --socket "$sock" \
    --index "9=$WORK/sap.ngsx"
  expect_exit 2 "$BIN_DIR/ngs_correctd" --socket "$sock"
}

if [ "$MODE" = "service" ]; then
  # Standalone service run: produce just the offline references and the
  # spectrum index the daemon serves, then drive the scenario.
  "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
    --out "$WORK/corrected_sap.fastq" --method sap --genome-length 20000 \
    --threads 2 --batch-size 1000 --save-index "$WORK/sap.ngsx"
  "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
    --out "$WORK/corrected_reptile.fastq" --method reptile \
    --genome-length 20000 --threads 2 --batch-size 1000
  service_scenario
  echo "service smoke test passed"
  exit 0
fi

# Round-trip every method the registry advertises.
methods=$("$BIN_DIR/ngs_correct" --method list | awk '{print $1}')
[ -n "$methods" ]
echo "$methods" | grep -qx reptile
in_lines=$(wc -l < "$WORK/reads.fastq")
for method in $methods; do
  "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
    --out "$WORK/corrected_$method.fastq" \
    --method "$method" --genome-length 20000 \
    --threads 2 --batch-size 1000
  test -s "$WORK/corrected_$method.fastq"
  # Same number of records in and out.
  out_lines=$(wc -l < "$WORK/corrected_$method.fastq")
  [ "$in_lines" = "$out_lines" ]
done

# Cluster the simulated reads as FASTA (exercises the FASTA path).
head -4000 "$WORK/reads.fastq" | awk 'NR%4==1{sub(/^@/,">");print} NR%4==2{print}' \
  > "$WORK/reads.fasta"
"$BIN_DIR/ngs_cluster" --in "$WORK/reads.fasta" --thresholds 0.9 \
  --out "$WORK/clusters.tsv"
test -s "$WORK/clusters.tsv"
# Header plus one row per sequence.
rows=$(($(wc -l < "$WORK/clusters.tsv") - 1))
seqs=$(grep -c '^>' "$WORK/reads.fasta")
[ "$rows" = "$seqs" ]

# Failure paths carry distinct exit codes and stderr messages.
# Usage/config errors -> 2.
expect_exit 2 "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" --method bogus
expect_exit 2 "$BIN_DIR/ngs_correct" --method sap  # --in missing
expect_exit 2 "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/x.fastq" --method sap --on-bad-record sometimes
expect_exit 2 "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/x.fastq" --method sap --fault-spec "no.such.site=always"
grep -q "no.such.site" "$WORK/stderr.txt"

# Missing/unreadable input -> 3.
expect_exit 3 "$BIN_DIR/ngs_correct" --in "$WORK/nonexistent.fastq" \
  --out "$WORK/x.fastq" --method sap

# Malformed input: fail mode -> 3 with a located parse error; skip mode
# drops the bad record and succeeds.
{
  head -8 "$WORK/reads.fastq"
  printf '@broken\nACGT\nIIII\n'   # no '+' separator
  sed -n '9,16p' "$WORK/reads.fastq"
} > "$WORK/malformed.fastq"
expect_exit 3 "$BIN_DIR/ngs_correct" --in "$WORK/malformed.fastq" \
  --out "$WORK/x.fastq" --method sap
grep -q "record 3" "$WORK/stderr.txt"
grep -q "line" "$WORK/stderr.txt"
"$BIN_DIR/ngs_correct" --in "$WORK/malformed.fastq" \
  --out "$WORK/skipped.fastq" --method sap --genome-length 20000 \
  --on-bad-record skip 2>"$WORK/stderr.txt"
grep -q "malformed records skipped" "$WORK/stderr.txt"
test -s "$WORK/skipped.fastq"

# Injected faults drive the same paths: a hard open fault -> 3, an
# absorbed pass-2 fault -> 0 with byte-identical output.
expect_exit 3 "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/x.fastq" --method sap --fault-spec "io.fastq.open=always"
"$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/salvaged.fastq" --method sap --genome-length 20000 \
  --threads 2 --batch-size 1000 \
  --fault-spec "core.pass2.batch=n1" 2>"$WORK/stderr.txt"
grep -q "fault injection:" "$WORK/stderr.txt"
cmp "$WORK/salvaged.fastq" "$WORK/corrected_sap.fastq"

# Overlapped streaming executor: the default run above is overlapped;
# --io-overlap off and a different --queue-depth must both produce
# byte-identical output, and the overlapped run reports its stage
# telemetry. A bad --io-overlap value is a usage error, and a reader-
# task fault tears the overlapped pipeline down with the I/O exit code.
"$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/corrected_serial.fastq" --method sap --genome-length 20000 \
  --threads 2 --batch-size 1000 --io-overlap off 2>"$WORK/stderr.txt"
cmp "$WORK/corrected_serial.fastq" "$WORK/corrected_sap.fastq"
! grep -q "overlap:" "$WORK/stderr.txt"
"$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/corrected_depth2.fastq" --method sap --genome-length 20000 \
  --threads 2 --batch-size 1000 --queue-depth 2 2>"$WORK/stderr.txt"
cmp "$WORK/corrected_depth2.fastq" "$WORK/corrected_sap.fastq"
grep -q "overlap: queue depth 2" "$WORK/stderr.txt"
grep -q "worker utilization" "$WORK/stderr.txt"
expect_exit 2 "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/x.fastq" --method sap --io-overlap sometimes
expect_exit 2 "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/x.fastq" --method sap --queue-depth 0
expect_exit 3 "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/x.fastq" --method sap \
  --fault-spec "core.pipeline.reader=n1"
grep -q "core.pipeline.reader" "$WORK/stderr.txt"
test ! -e "$WORK/x.fastq"

# NGS_FAULT_SPEC environment variable is honored too.
expect_exit 3 env NGS_FAULT_SPEC="io.fastq.open=always" \
  "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/x.fastq" --method sap

# Persistent spectrum index: build/info/verify round-trip.
"$BIN_DIR/ngs_index" build --in "$WORK/reads.fastq" \
  --out "$WORK/spectrum.ngsx" --k 12 --both-strands 1 --threads 2
test -s "$WORK/spectrum.ngsx"
"$BIN_DIR/ngs_index" info --index "$WORK/spectrum.ngsx" \
  | grep -q "k: 12"
"$BIN_DIR/ngs_index" verify --index "$WORK/spectrum.ngsx"
# Machine-readable variant for scripting/monitoring.
"$BIN_DIR/ngs_index" info --index "$WORK/spectrum.ngsx" --json \
  > "$WORK/info.json"
grep -q '"k": 12' "$WORK/info.json"
grep -q '"checksum": "0x' "$WORK/info.json"
grep -q '"sections": \[' "$WORK/info.json"

# A corrupted copy must fail verification with the index exit code (and
# only verification hits the payload pages, so flip a byte deep inside
# the file).
cp "$WORK/spectrum.ngsx" "$WORK/corrupt.ngsx"
printf '\xff' | dd of="$WORK/corrupt.ngsx" bs=1 seek=300 count=1 \
  conv=notrunc status=none
expect_exit 4 "$BIN_DIR/ngs_index" verify --index "$WORK/corrupt.ngsx"

# Index failure paths: missing index -> 4, unknown subcommand -> 2, a
# corrupt index behind ngs-correct --load-index -> 4.
expect_exit 4 "$BIN_DIR/ngs_index" info --index "$WORK/nonexistent.ngsx"
expect_exit 4 "$BIN_DIR/ngs_index" verify --index "$WORK/nonexistent.ngsx"
expect_exit 2 "$BIN_DIR/ngs_index" frobnicate
expect_exit 2 "$BIN_DIR/ngs_index" build --in "$WORK/reads.fastq" \
  --out "$WORK/bad_k.ngsx" --k 99
expect_exit 3 "$BIN_DIR/ngs_index" build --in "$WORK/nonexistent.fastq" \
  --out "$WORK/x.ngsx"
# Structural corruption (truncation) is caught even by the lazy
# non-verifying load behind --load-index.
head -c 100 "$WORK/spectrum.ngsx" > "$WORK/truncated.ngsx"
expect_exit 4 "$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/x.fastq" --method sap --load-index "$WORK/truncated.ngsx"

# Build-once/correct-many: --save-index then --load-index must produce
# byte-identical corrected output (sap uses the k=12 spectrum).
"$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/corrected_saved.fastq" --method sap --genome-length 20000 \
  --threads 2 --batch-size 1000 --save-index "$WORK/sap.ngsx"
test -s "$WORK/sap.ngsx"
"$BIN_DIR/ngs_index" verify --index "$WORK/sap.ngsx"
"$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/corrected_loaded.fastq" --method sap --genome-length 20000 \
  --threads 2 --batch-size 1000 --load-index "$WORK/sap.ngsx"
cmp "$WORK/corrected_saved.fastq" "$WORK/corrected_loaded.fastq"
cmp "$WORK/corrected_saved.fastq" "$WORK/corrected_sap.fastq"

# Out-of-core sharded build: a 1 MiB budget forces the k=12 spectrum
# (~800k instances) through the spill path. The sharded (version-2)
# file must verify, advertise its per-shard section table, and serve
# byte-identical correction through --load-index.
"$BIN_DIR/ngs_index" build --in "$WORK/reads.fastq" \
  --out "$WORK/sharded.ngsx" --k 12 --both-strands 1 --threads 2 \
  --memory-budget-mb 1 --spill-dir "$WORK" 2>"$WORK/stderr.txt"
grep -q "prefix shards" "$WORK/stderr.txt"
"$BIN_DIR/ngs_index" verify --index "$WORK/sharded.ngsx"
"$BIN_DIR/ngs_index" info --index "$WORK/sharded.ngsx" \
  > "$WORK/sharded_info.txt"
grep -q "format_version: 2" "$WORK/sharded_info.txt"
grep -q "shard_count:" "$WORK/sharded_info.txt"
grep -q "key_range=" "$WORK/sharded_info.txt"
grep -q "shard_table" "$WORK/sharded_info.txt"
"$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/corrected_sharded.fastq" --method sap --genome-length 20000 \
  --threads 2 --batch-size 1000 --load-index "$WORK/sharded.ngsx"
cmp "$WORK/corrected_sharded.fastq" "$WORK/corrected_sap.fastq"

# A truncated sharded file is rejected with the index exit code.
head -c 4096 "$WORK/sharded.ngsx" > "$WORK/sharded_trunc.ngsx"
expect_exit 4 "$BIN_DIR/ngs_index" verify --index "$WORK/sharded_trunc.ngsx"

# Direct bounded-memory correction: --memory-budget-mb spills pass 1,
# reports it, and still writes byte-identical output.
"$BIN_DIR/ngs_correct" --in "$WORK/reads.fastq" \
  --out "$WORK/corrected_budget.fastq" --method sap --genome-length 20000 \
  --threads 2 --batch-size 1000 --memory-budget-mb 1 \
  --spill-dir "$WORK" 2>"$WORK/stderr.txt"
grep -q "spill: pass 1 stayed under" "$WORK/stderr.txt"
cmp "$WORK/corrected_budget.fastq" "$WORK/corrected_sap.fastq"

# Long-lived correction service: the daemon serves $WORK/sap.ngsx saved
# above; corrected_sap/corrected_reptile are the offline references.
service_scenario

echo "tools smoke test passed"
