// Parameterized property suites: invariants that must hold across
// configuration sweeps rather than at single points.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "closet/similarity.hpp"
#include "eval/correction_metrics.hpp"
#include "kspec/tile_table.hpp"
#include "mapreduce/job.hpp"
#include "reptile/corrector.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;

// ---------------------------------------------------------------------
// Reptile never corrupts: across coverage x error-rate combinations,
// specificity stays near-perfect and gain never goes negative.

struct CorrectionCase {
  double coverage;
  double error_rate;
};

class ReptileSafety : public ::testing::TestWithParam<CorrectionCase> {};

TEST_P(ReptileSafety, SpecificityAndGainBounds) {
  const auto [coverage, error_rate] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(coverage * 100 + error_rate * 1e5));
  sim::GenomeSpec gspec;
  gspec.length = 15000;
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, error_rate);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = coverage;
  const auto run = sim::simulate_reads(genome.sequence, model, cfg, rng);

  reptile::ReptileParams params;
  params.k = 10;
  params.c_min = 3;
  params.c_good = 8;
  params.quality_cutoff = 15;
  reptile::ReptileCorrector corrector(run.reads, params);
  reptile::CorrectionStats stats;
  const auto corrected = corrector.correct_all(run.reads, stats);
  const auto m = eval::evaluate_correction(run.reads, corrected);
  EXPECT_GT(m.specificity(), 0.993)
      << "cov=" << coverage << " err=" << error_rate;
  EXPECT_GE(m.gain(), -0.01)
      << "cov=" << coverage << " err=" << error_rate;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReptileSafety,
    ::testing::Values(CorrectionCase{20, 0.005}, CorrectionCase{40, 0.005},
                      CorrectionCase{80, 0.005}, CorrectionCase{40, 0.02},
                      CorrectionCase{80, 0.02}, CorrectionCase{40, 0.001}));

// ---------------------------------------------------------------------
// MapReduce determinism and correctness are invariant to the execution
// geometry (reducer count, map task count, injected failures).

struct EngineCase {
  std::size_t reducers;
  std::size_t map_tasks;
  double failure_rate;
};

class EngineGeometry : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineGeometry, SumInvariantAcrossGeometry) {
  const auto [reducers, map_tasks, failure_rate] = GetParam();
  std::vector<std::pair<int, int>> input;
  util::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    input.emplace_back(i, static_cast<int>(rng.below(97)));
  }
  mapreduce::JobConfig config;
  config.num_reducers = reducers;
  config.num_map_tasks = map_tasks;
  config.task_failure_rate = failure_rate;
  config.max_task_attempts = 64;
  using SumJob = mapreduce::Job<int, int, int, int, int, int>;
  const auto out = SumJob::run(
      input,
      [](const int&, const int& v, mapreduce::Emitter<int, int>& e) {
        e.emit(v % 10, v);
      },
      [](const int& k, std::span<const int> vs,
         mapreduce::Emitter<int, int>& e) {
        e.emit(k, std::accumulate(vs.begin(), vs.end(), 0));
      },
      config);
  // Total is preserved regardless of geometry.
  long long total = 0;
  for (const auto& [k, v] : out) total += v;
  long long expect = 0;
  for (const auto& [k, v] : input) expect += v;
  EXPECT_EQ(total, expect);
  EXPECT_EQ(out.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineGeometry,
    ::testing::Values(EngineCase{1, 1, 0.0}, EngineCase{1, 16, 0.0},
                      EngineCase{8, 4, 0.0}, EngineCase{16, 16, 0.0},
                      EngineCase{4, 8, 0.3}, EngineCase{8, 2, 0.5}));

// ---------------------------------------------------------------------
// Tile table invariants across k / overlap / quality cutoffs.

struct TileCase {
  int k;
  int overlap;
  int qc;
};

class TileInvariants : public ::testing::TestWithParam<TileCase> {};

TEST_P(TileInvariants, OgBoundedAndStrandSymmetric) {
  const auto [k, overlap, qc] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(k * 100 + overlap * 10 + qc));
  sim::GenomeSpec gspec;
  gspec.length = 5000;
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 15.0;
  const auto run = sim::simulate_reads(genome.sequence, model, cfg, rng);

  kspec::TileParams params;
  params.k = k;
  params.overlap = overlap;
  params.quality_cutoff = qc;
  const auto table = kspec::TileTable::build(run.reads, params);
  ASSERT_GT(table.size(), 0u);
  const int T = params.tile_length();
  std::uint64_t total_oc = 0;
  for (std::size_t i = 0; i < table.size(); i += 7) {
    const auto counts = table.counts_at(i);
    ASSERT_LE(counts.og, counts.oc);
    total_oc += counts.oc;
    // Strand symmetry: a tile and its reverse complement have the same
    // raw multiplicity when both strands contribute.
    const auto rc = seq::reverse_complement(table.code_at(i), T);
    ASSERT_EQ(table.counts(rc).oc, counts.oc);
  }
  EXPECT_GT(total_oc, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TileInvariants,
                         ::testing::Values(TileCase{8, 0, 0},
                                           TileCase{10, 0, 20},
                                           TileCase{12, 2, 0},
                                           TileCase{12, 4, 25},
                                           TileCase{14, 8, 15}));

// ---------------------------------------------------------------------
// Sketch partitions: the round sketches of any M partition the hash set.

class SketchPartition : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SketchPartition, RoundsPartitionHashes) {
  const std::uint64_t M = GetParam();
  util::Rng rng(M);
  const auto read = sim::random_sequence(500, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto hashes = closet::kmer_hashes(read, 15);
  ASSERT_FALSE(hashes.empty());
  std::set<std::uint64_t> rebuilt;
  std::size_t total = 0;
  for (std::uint64_t l = 0; l < M; ++l) {
    const auto sketch = closet::sketch_of(hashes, M, l);
    total += sketch.size();
    rebuilt.insert(sketch.begin(), sketch.end());
  }
  EXPECT_EQ(total, hashes.size());
  EXPECT_EQ(rebuilt.size(), hashes.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, SketchPartition,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

// ---------------------------------------------------------------------
// Error-model sampling matches its matrix distribution across profiles.

enum class Profile { kUniform, kIllumina, kAlternate };

class ModelSampling : public ::testing::TestWithParam<Profile> {};

TEST_P(ModelSampling, EmpiricalMatchesMatrix) {
  sim::ErrorModel model;
  switch (GetParam()) {
    case Profile::kUniform: model = sim::ErrorModel::uniform(20, 0.05); break;
    case Profile::kIllumina:
      model = sim::ErrorModel::illumina(20, 0.05);
      break;
    case Profile::kAlternate:
      model = sim::ErrorModel::illumina_alternate(20, 0.05);
      break;
  }
  util::Rng rng(3);
  constexpr int kTrials = 60000;
  const std::size_t pos = 15;
  for (std::uint8_t from = 0; from < 4; ++from) {
    std::array<int, 4> counts{};
    for (int t = 0; t < kTrials; ++t) ++counts[model.sample(pos, from, rng)];
    for (int to = 0; to < 4; ++to) {
      EXPECT_NEAR(counts[to] / static_cast<double>(kTrials),
                  model.matrix(pos)[from][to], 0.01);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ModelSampling,
                         ::testing::Values(Profile::kUniform,
                                           Profile::kIllumina,
                                           Profile::kAlternate));

}  // namespace
