#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <string>

#include "mapreduce/block_store.hpp"
#include "mapreduce/job.hpp"

namespace {

using namespace ngs;
using mapreduce::Emitter;
using mapreduce::Job;

using WordCountJob =
    Job<int, std::string, std::string, int, std::string, int>;

std::vector<std::pair<std::string, int>> word_count(
    const std::vector<std::pair<int, std::string>>& docs,
    const mapreduce::JobConfig& config = {},
    mapreduce::JobCounters* counters = nullptr) {
  return WordCountJob::run(
      docs,
      [](const int&, const std::string& text,
         Emitter<std::string, int>& out) {
        std::string word;
        for (const char c : text + " ") {
          if (c == ' ') {
            if (!word.empty()) out.emit(word, 1);
            word.clear();
          } else {
            word.push_back(c);
          }
        }
      },
      [](const std::string& word, std::span<const int> counts,
         Emitter<std::string, int>& out) {
        out.emit(word, static_cast<int>(
                           std::accumulate(counts.begin(), counts.end(), 0)));
      },
      config, counters);
}

TEST(MapReduce, WordCount) {
  const std::vector<std::pair<int, std::string>> docs = {
      {0, "the quick brown fox"},
      {1, "the lazy dog"},
      {2, "the quick dog"},
  };
  auto result = word_count(docs);
  std::map<std::string, int> counts(result.begin(), result.end());
  EXPECT_EQ(counts["the"], 3);
  EXPECT_EQ(counts["quick"], 2);
  EXPECT_EQ(counts["dog"], 2);
  EXPECT_EQ(counts["fox"], 1);
  EXPECT_EQ(counts.size(), 6u);
}

TEST(MapReduce, CountersAreAccurate) {
  const std::vector<std::pair<int, std::string>> docs = {
      {0, "a b"}, {1, "a"}, {2, "c c c"}};
  mapreduce::JobCounters counters;
  word_count(docs, {}, &counters);
  EXPECT_EQ(counters.map_input_records, 3u);
  EXPECT_EQ(counters.map_output_records, 6u);  // a,b,a,c,c,c
  EXPECT_EQ(counters.reduce_input_groups, 3u);  // a, b, c
  EXPECT_EQ(counters.reduce_output_records, 3u);
  EXPECT_GE(counters.map_task_attempts, 1u);
}

TEST(MapReduce, OutputIsDeterministic) {
  std::vector<std::pair<int, std::string>> docs;
  for (int i = 0; i < 200; ++i) {
    docs.emplace_back(i, "w" + std::to_string(i % 17) + " w" +
                             std::to_string(i % 5));
  }
  const auto a = word_count(docs);
  const auto b = word_count(docs);
  EXPECT_EQ(a, b);
}

TEST(MapReduce, EmptyInput) {
  const auto result = word_count({});
  EXPECT_TRUE(result.empty());
}

TEST(MapReduce, KeysSortedWithinReducer) {
  mapreduce::JobConfig config;
  config.num_reducers = 1;  // single partition -> globally sorted output
  const auto result = word_count({{0, "zeta alpha mid"}}, config);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].first, "alpha");
  EXPECT_EQ(result[2].first, "zeta");
}

TEST(MapReduce, InjectedFaultsAreRetried) {
  std::vector<std::pair<int, std::string>> docs;
  for (int i = 0; i < 64; ++i) docs.emplace_back(i, "x y");
  mapreduce::JobConfig config;
  config.task_failure_rate = 0.4;
  config.max_task_attempts = 50;
  mapreduce::JobCounters counters;
  const auto result = word_count(docs, config, &counters);
  std::map<std::string, int> counts(result.begin(), result.end());
  EXPECT_EQ(counts["x"], 64);  // retries must not duplicate records
  EXPECT_EQ(counts["y"], 64);
  EXPECT_GT(counters.map_task_failures, 0u);
  EXPECT_EQ(counters.map_task_attempts,
            counters.map_task_failures +
                (counters.map_task_attempts - counters.map_task_failures));
}

TEST(MapReduce, ExhaustedRetriesThrow) {
  std::vector<std::pair<int, std::string>> docs{{0, "x"}};
  mapreduce::JobConfig config;
  config.task_failure_rate = 1.0;  // every attempt fails
  config.max_task_attempts = 3;
  EXPECT_THROW(word_count(docs, config), mapreduce::TaskFailedError);
}

TEST(MapReduce, ExhaustionErrorIsTypedAndNamesTheTask) {
  std::vector<std::pair<int, std::string>> docs{{0, "x"}, {1, "y"}};
  mapreduce::JobConfig config;
  config.task_failure_rate = 1.0;
  config.max_task_attempts = 2;
  config.num_map_tasks = 1;
  try {
    word_count(docs, config);
    FAIL() << "expected TaskFailedError";
  } catch (const mapreduce::TaskFailedError& e) {
    EXPECT_EQ(e.kind(), ngs::ErrorKind::kTask);
    const std::string what = e.what();
    EXPECT_NE(what.find("map task 0"), std::string::npos) << what;
    EXPECT_NE(what.find("2 attempts"), std::string::npos) << what;
    EXPECT_NE(what.find("retry budget exhausted"), std::string::npos) << what;
  }
}

TEST(MapReduce, OutputAfterInjectedFaultsMatchesFaultFreeRun) {
  std::vector<std::pair<int, std::string>> docs;
  for (int i = 0; i < 128; ++i) {
    docs.emplace_back(i, "k" + std::to_string(i % 13) + " k" +
                             std::to_string(i % 7));
  }
  mapreduce::JobConfig clean_config;
  clean_config.num_map_tasks = 16;
  const auto clean = word_count(docs, clean_config);

  mapreduce::JobConfig faulty_config = clean_config;
  faulty_config.task_failure_rate = 0.5;
  faulty_config.max_task_attempts = 100;
  mapreduce::JobCounters counters;
  const auto faulty = word_count(docs, faulty_config, &counters);
  EXPECT_GT(counters.map_task_failures, 0u) << "faults never fired";
  EXPECT_EQ(faulty, clean)
      << "retried tasks must reproduce the fault-free output exactly";
}

TEST(MapReduce, InjectedFaultsAreDeterministicAcrossPoolSizes) {
  std::vector<std::pair<int, std::string>> docs;
  for (int i = 0; i < 96; ++i) {
    docs.emplace_back(i, "a" + std::to_string(i % 11));
  }
  // Fix the task count so the splits (and the per-task fault RNG
  // streams) are identical no matter how many threads execute them.
  const auto run_on = [&](std::size_t pool_size) {
    util::ThreadPool pool(pool_size);
    mapreduce::JobConfig config;
    config.num_map_tasks = 12;
    config.task_failure_rate = 0.4;
    config.max_task_attempts = 100;
    config.failure_seed = 99;
    config.pool = &pool;
    mapreduce::JobCounters counters;
    const auto result = word_count(docs, config, &counters);
    return std::make_pair(result, counters.map_task_failures);
  };
  const auto one = run_on(1);
  const auto four = run_on(4);
  const auto eight = run_on(8);
  EXPECT_EQ(one.first, four.first);
  EXPECT_EQ(one.first, eight.first);
  EXPECT_GT(one.second, 0u) << "faults never fired";
  EXPECT_EQ(one.second, four.second)
      << "fault schedule must depend on (seed, task), not thread count";
  EXPECT_EQ(one.second, eight.second);
}

TEST(BlockStore, WriteReadRoundTrip) {
  mapreduce::BlockStore store(4, 2, 16);
  const std::string data(100, 'x');
  store.write("file", data);
  EXPECT_TRUE(store.exists("file"));
  EXPECT_EQ(store.read("file"), data);
  EXPECT_EQ(store.total_blocks(), 7u);  // ceil(100/16)
}

TEST(BlockStore, SurvivesSingleNodeFailureWithReplication) {
  mapreduce::BlockStore store(4, 2, 8);
  const std::string data = "abcdefghijklmnopqrstuvwxyz";
  store.write("f", data);
  store.fail_node(0);
  EXPECT_EQ(store.read("f"), data);  // replicas on other nodes survive
  EXPECT_EQ(store.live_nodes(), 3u);
}

TEST(BlockStore, RereplicationRestoresRedundancy) {
  mapreduce::BlockStore store(5, 3, 8);
  store.write("f", std::string(64, 'q'));
  store.fail_node(1);
  const std::size_t created = store.rereplicate();
  EXPECT_GT(created, 0u);
  // Now a second failure must still be survivable.
  store.fail_node(2);
  EXPECT_EQ(store.read("f"), std::string(64, 'q'));
}

TEST(BlockStore, LosesDataWhenAllReplicasDie) {
  mapreduce::BlockStore store(2, 1, 8);
  store.write("f", "hello world, this spans blocks");
  store.fail_node(0);
  store.fail_node(1);
  EXPECT_THROW(store.read("f"), std::runtime_error);
}

TEST(BlockStore, OverwriteAndRemove) {
  mapreduce::BlockStore store(3, 2, 8);
  store.write("f", "first");
  store.write("f", "second version");
  EXPECT_EQ(store.read("f"), "second version");
  store.remove("f");
  EXPECT_FALSE(store.exists("f"));
  EXPECT_THROW(store.read("f"), std::runtime_error);
}

TEST(BlockStore, RejectsZeroConfig) {
  EXPECT_THROW(mapreduce::BlockStore(0, 1, 8), std::invalid_argument);
  EXPECT_THROW(mapreduce::BlockStore(2, 0, 8), std::invalid_argument);
}

}  // namespace
