// Tests for the CLI parser and the FreClu baseline.

#include <gtest/gtest.h>

#include "baselines/freclu.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "seq/alphabet.hpp"

namespace {

using namespace ngs;

TEST(Cli, ParsesOptionsAndPositionals) {
  util::CliParser cli("prog", "test");
  cli.add_option("count", "a number", true, "5");
  cli.add_option("verbose", "a switch", false);
  const char* argv[] = {"prog", "--count", "12", "pos1", "--verbose", "pos2"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(cli.get_int("count", 0), 12);
  EXPECT_TRUE(cli.has("verbose"));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, DefaultsApply) {
  util::CliParser cli("prog", "test");
  cli.add_option("rate", "a rate", true, "0.25");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0), 0.25);
  EXPECT_EQ(cli.get("missing", "fb"), "fb");
}

TEST(Cli, RejectsUnknownAndMissingValue) {
  util::CliParser cli("prog", "test");
  cli.add_option("x", "", true);
  {
    const char* argv[] = {"prog", "--nope"};
    util::CliParser c2 = cli;
    EXPECT_FALSE(c2.parse(2, argv));
    EXPECT_FALSE(c2.error().empty());
  }
  {
    const char* argv[] = {"prog", "--x"};
    util::CliParser c3 = cli;
    EXPECT_FALSE(c3.parse(2, argv));
  }
}

TEST(Cli, HelpAndUsage) {
  util::CliParser cli("prog", "does things");
  cli.add_option("alpha", "the alpha", true, "3");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.help_requested());
  const auto usage = cli.usage();
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("default: 3"), std::string::npos);
}

seq::ReadSet transcript_like(util::Rng& rng) {
  // Three "molecules" with very different abundances; per-copy errors.
  std::vector<std::string> molecules;
  for (int m = 0; m < 3; ++m) {
    std::string s;
    for (int i = 0; i < 30; ++i) {
      s.push_back(seq::code_to_base(static_cast<std::uint8_t>(rng.below(4))));
    }
    molecules.push_back(s);
  }
  const std::vector<int> copies{300, 120, 40};
  seq::ReadSet reads;
  int id = 0;
  for (int m = 0; m < 3; ++m) {
    for (int c = 0; c < copies[static_cast<std::size_t>(m)]; ++c) {
      std::string s = molecules[static_cast<std::size_t>(m)];
      if (rng.bernoulli(0.15)) {  // one error in 15% of copies
        const auto pos = rng.below(s.size());
        s[pos] = seq::complement_base(s[pos]);
      }
      reads.reads.push_back({"t" + std::to_string(id++), s, {}});
    }
  }
  return reads;
}

TEST(Freclu, CollapsesErrorVariantsToRoots) {
  util::Rng rng(3);
  const auto reads = transcript_like(rng);
  baselines::FrecluCorrector corrector({});
  baselines::FrecluStats stats;
  const auto corrected = corrector.correct_all(reads, stats);
  EXPECT_GT(stats.distinct_sequences, 3u);  // error variants existed
  EXPECT_GT(stats.reads_corrected, 0u);
  // Post-correction the distinct sequence count collapses toward the
  // three true molecules.
  std::set<std::string> distinct;
  for (const auto& r : corrected) distinct.insert(r.bases);
  EXPECT_LE(distinct.size(), 6u);
  EXPECT_GE(distinct.size(), 3u);
}

TEST(Freclu, LeavesBalancedVariantsAlone) {
  // Two sequences with comparable frequency (a biological variant, not
  // an error): neither dominates 2x, so neither is corrected away.
  seq::ReadSet reads;
  for (int i = 0; i < 50; ++i) reads.reads.push_back({"a", "ACGTACGT", {}});
  for (int i = 0; i < 40; ++i) reads.reads.push_back({"b", "ACGTACGA", {}});
  baselines::FrecluCorrector corrector({});
  baselines::FrecluStats stats;
  const auto corrected = corrector.correct_all(reads, stats);
  EXPECT_EQ(stats.reads_corrected, 0u);
  EXPECT_EQ(stats.trees, 2u);
}

TEST(Freclu, EmptyInput) {
  baselines::FrecluCorrector corrector({});
  baselines::FrecluStats stats;
  seq::ReadSet empty;
  EXPECT_TRUE(corrector.correct_all(empty, stats).empty());
  EXPECT_EQ(stats.distinct_sequences, 0u);
}

}  // namespace
