// Tests for ngs::fault — the deterministic fault-injection registry:
// spec grammar (valid and rejected forms), trigger semantics, seeded
// reproducibility, counters, and the bounded transient-retry helper.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/sites.hpp"
#include "util/error.hpp"

namespace {

using namespace ngs;

/// Every test runs against the pristine process-wide registry and
/// leaves it disarmed for whoever runs next.
class FaultRegistry : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::instance().reset(); }
  void TearDown() override { fault::Registry::instance().reset(); }

  fault::Registry& reg() { return fault::Registry::instance(); }
};

TEST_F(FaultRegistry, DisarmedByDefaultAndFreeOfCharge) {
  EXPECT_FALSE(reg().enabled());
  EXPECT_FALSE(fault::should_fire(fault::sites::kFastqOpen));
  // Disarmed checks are not even counted (the fast path never reaches
  // the registry).
  EXPECT_EQ(reg().stats(fault::sites::kFastqOpen).hits, 0u);
}

TEST_F(FaultRegistry, AlwaysOnceAndNthTriggers) {
  reg().configure("io.fastq.open=always,io.fastq.read=once,index.open=n3");
  EXPECT_TRUE(reg().enabled());

  EXPECT_TRUE(fault::should_fire(fault::sites::kFastqOpen));
  EXPECT_TRUE(fault::should_fire(fault::sites::kFastqOpen));

  EXPECT_TRUE(fault::should_fire(fault::sites::kFastqRead));
  EXPECT_FALSE(fault::should_fire(fault::sites::kFastqRead));
  EXPECT_FALSE(fault::should_fire(fault::sites::kFastqRead));

  EXPECT_FALSE(fault::should_fire(fault::sites::kIndexOpen));
  EXPECT_FALSE(fault::should_fire(fault::sites::kIndexOpen));
  EXPECT_TRUE(fault::should_fire(fault::sites::kIndexOpen));
  EXPECT_FALSE(fault::should_fire(fault::sites::kIndexOpen));

  const auto stats = reg().stats(fault::sites::kIndexOpen);
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.fires, 1u);
}

TEST_F(FaultRegistry, OffDisarmsASiteAndEnabledTracksIt) {
  reg().configure("io.fastq.open=always");
  EXPECT_TRUE(reg().enabled());
  reg().configure("io.fastq.open=off");
  EXPECT_FALSE(reg().enabled());
  EXPECT_FALSE(fault::should_fire(fault::sites::kFastqOpen));
}

TEST_F(FaultRegistry, ProbabilityIsSeedDeterministic) {
  const auto draw = [this](std::uint64_t seed) {
    reg().reset();
    reg().configure("core.pass2.read=p0.5,seed=" + std::to_string(seed));
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) {
      fires.push_back(fault::should_fire(fault::sites::kPass2Read));
    }
    return fires;
  };
  const auto a = draw(42);
  const auto b = draw(42);
  const auto c = draw(43);
  EXPECT_EQ(a, b) << "same seed must reproduce the same fault sequence";
  EXPECT_NE(a, c) << "different seeds should diverge (p=0.5, 64 draws)";
  // p=0.5 over 64 draws: all-true or all-false would indicate a broken RNG.
  const auto fired = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, 64u);
}

TEST_F(FaultRegistry, UnknownSiteAndMalformedTriggersRejected) {
  for (const char* bad : {
           "no.such.site=always",       // not in the catalog
           "io.fastq.open",             // missing '=trigger'
           "io.fastq.open=",            // empty trigger
           "io.fastq.open=n0",          // nth is 1-based
           "io.fastq.open=nxyz",        // not a number
           "io.fastq.open=p1.5",        // probability out of range
           "io.fastq.open=pxyz",        // not a number
           "io.fastq.open=sometimes",   // unknown trigger word
           "seed=notanumber",           // malformed seed
       }) {
    try {
      reg().configure(bad);
      FAIL() << "expected rejection of spec: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kConfig) << bad;
      EXPECT_EQ(tool_exit_code(e.kind()), 2) << bad;
    }
  }
  EXPECT_FALSE(reg().enabled());
}

TEST_F(FaultRegistry, EmptySpecAndWhitespaceTolerated) {
  EXPECT_NO_THROW(reg().configure(""));
  EXPECT_NO_THROW(reg().configure(" io.fastq.open=once , seed=9 "));
  EXPECT_TRUE(reg().enabled());
  EXPECT_EQ(reg().seed(), 9u);
}

TEST_F(FaultRegistry, UnarmedSitesStillCountHitsWhenEnabled) {
  reg().configure("io.fastq.open=n100");
  EXPECT_FALSE(fault::should_fire(fault::sites::kIndexMmap));
  EXPECT_EQ(reg().stats(fault::sites::kIndexMmap).hits, 1u);
  EXPECT_EQ(reg().stats(fault::sites::kIndexMmap).fires, 0u);
}

TEST_F(FaultRegistry, ResetClearsCountersAndTriggers) {
  reg().configure("io.fastq.open=always");
  (void)fault::should_fire(fault::sites::kFastqOpen);
  reg().reset();
  EXPECT_FALSE(reg().enabled());
  EXPECT_EQ(reg().stats(fault::sites::kFastqOpen).hits, 0u);
  EXPECT_TRUE(reg().all_stats().empty());
}

TEST_F(FaultRegistry, MaybeFailThrowsTypedSitedError) {
  reg().configure("index.open=once");
  try {
    fault::maybe_fail(fault::sites::kIndexOpen, ErrorKind::kIndex,
                      "loading index");
    FAIL() << "expected injected fault";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIndex);
    EXPECT_EQ(e.site(), fault::sites::kIndexOpen);
    EXPECT_FALSE(e.transient());
    EXPECT_NE(std::string(e.what()).find("loading index"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("index.open"), std::string::npos);
  }
  // Second hit: disarmed by 'once'.
  EXPECT_NO_THROW(fault::maybe_fail(fault::sites::kIndexOpen,
                                    ErrorKind::kIndex, "loading index"));
}

TEST_F(FaultRegistry, CatalogNamesAreUniqueAndNonEmpty) {
  std::vector<std::string> names(fault::sites::kAll,
                                 fault::sites::kAll + fault::sites::kCount);
  for (const auto& n : names) EXPECT_FALSE(n.empty());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end())
      << "duplicate site names in the catalog";
}

// ---------------------------------------------------------------------
// with_retry

TEST_F(FaultRegistry, WithRetrySucceedsAfterTransientFailures) {
  int calls = 0;
  std::uint64_t retries = 0;
  fault::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_ms = 0;
  const int result = fault::with_retry(
      policy,
      [&] {
        if (++calls < 3) {
          throw Error(ErrorKind::kIo, "test.site", "flaky", /*transient=*/true);
        }
        return 7;
      },
      &retries);
  EXPECT_EQ(result, 7);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST_F(FaultRegistry, WithRetryExhaustionPropagates) {
  int calls = 0;
  fault::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_ms = 0;
  try {
    fault::with_retry(policy, [&]() -> int {
      ++calls;
      throw Error(ErrorKind::kIo, "test.site", "still flaky",
                  /*transient=*/true);
    });
    FAIL() << "expected exhaustion";
  } catch (const Error& e) {
    EXPECT_TRUE(e.transient());
  }
  EXPECT_EQ(calls, 3);
}

TEST_F(FaultRegistry, WithRetryDoesNotRetryPermanentErrors) {
  int calls = 0;
  fault::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_ms = 0;
  EXPECT_THROW(fault::with_retry(policy,
                                 [&]() -> int {
                                   ++calls;
                                   throw Error(ErrorKind::kParse, "test.site",
                                               "permanent");
                                 }),
               Error);
  EXPECT_EQ(calls, 1) << "non-transient errors must not be retried";
}

TEST(ToolExitCodes, MapTaxonomyToDistinctCodes) {
  EXPECT_EQ(tool_exit_code(ErrorKind::kConfig), 2);
  EXPECT_EQ(tool_exit_code(ErrorKind::kIo), 3);
  EXPECT_EQ(tool_exit_code(ErrorKind::kParse), 3);
  EXPECT_EQ(tool_exit_code(ErrorKind::kIndex), 4);
  EXPECT_EQ(tool_exit_code(ErrorKind::kTask), 1);
  EXPECT_EQ(tool_exit_code(ErrorKind::kInternal), 1);
}

}  // namespace
