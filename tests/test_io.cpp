#include <gtest/gtest.h>

#include <sstream>

#include "io/fastx.hpp"

namespace {

using namespace ngs;

seq::ReadSet two_reads() {
  seq::ReadSet set;
  seq::Read a;
  a.id = "read1";
  a.bases = "ACGTACGT";
  a.quality = {30, 31, 32, 33, 34, 35, 36, 37};
  seq::Read b;
  b.id = "read2 with description";
  b.bases = "TTNNA";
  b.quality = {2, 2, 2, 40, 40};
  set.reads = {a, b};
  return set;
}

TEST(Fastq, RoundTrip) {
  const auto original = two_reads();
  std::stringstream ss;
  io::write_fastq(ss, original);
  const auto parsed = io::read_fastq(ss);
  ASSERT_EQ(parsed.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(parsed.reads[i].id, original.reads[i].id);
    EXPECT_EQ(parsed.reads[i].bases, original.reads[i].bases);
    EXPECT_EQ(parsed.reads[i].quality, original.reads[i].quality);
  }
}

TEST(Fastq, DefaultQualityWhenMissing) {
  seq::ReadSet set;
  set.reads.push_back({"r", "ACGT", {}});
  std::stringstream ss;
  io::write_fastq(ss, set, 25);
  const auto parsed = io::read_fastq(ss);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.reads[0].quality,
            (std::vector<std::uint8_t>{25, 25, 25, 25}));
}

TEST(Fastq, RejectsMalformedRecords) {
  {
    std::stringstream ss("not-a-header\nACGT\n+\nIIII\n");
    EXPECT_THROW(io::read_fastq(ss), std::runtime_error);
  }
  {
    std::stringstream ss("@r\nACGT\n+\nII\n");  // quality length mismatch
    EXPECT_THROW(io::read_fastq(ss), std::runtime_error);
  }
  {
    std::stringstream ss("@r\nACGT\n");  // truncated
    EXPECT_THROW(io::read_fastq(ss), std::runtime_error);
  }
}

TEST(Fastq, HandlesCrLf) {
  std::stringstream ss("@r\r\nACGT\r\n+\r\nIIII\r\n");
  const auto parsed = io::read_fastq(ss);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.reads[0].bases, "ACGT");
}

TEST(Fasta, RoundTripMultiline) {
  seq::ReadSet set;
  set.reads.push_back({"genome", std::string(200, 'A'), {}});
  set.reads[0].bases[50] = 'C';
  std::stringstream ss;
  io::write_fasta(ss, set, 60);
  const auto parsed = io::read_fasta(ss);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.reads[0].bases, set.reads[0].bases);
  EXPECT_EQ(parsed.reads[0].id, "genome");
}

TEST(Fasta, MultipleRecordsAndBlankLines) {
  std::stringstream ss(">a\nACGT\n\n>b\nTT\nGG\n");
  const auto parsed = io::read_fasta(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.reads[0].bases, "ACGT");
  EXPECT_EQ(parsed.reads[1].bases, "TTGG");
}

TEST(Fasta, RejectsSequenceBeforeHeader) {
  std::stringstream ss("ACGT\n>a\nACGT\n");
  EXPECT_THROW(io::read_fasta(ss), std::runtime_error);
}

TEST(FastxFiles, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/ngs_test.fastq";
  const auto original = two_reads();
  io::write_fastq_file(path, original);
  const auto parsed = io::read_fastq_file(path);
  ASSERT_EQ(parsed.size(), original.size());
  EXPECT_EQ(parsed.reads[1].bases, original.reads[1].bases);
  EXPECT_THROW(io::read_fastq_file("/nonexistent/nope.fastq"),
               std::runtime_error);
}

}  // namespace
