#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/fastq_stream.hpp"
#include "io/fastx.hpp"
#include "util/error.hpp"

namespace {

using namespace ngs;

seq::ReadSet two_reads() {
  seq::ReadSet set;
  seq::Read a;
  a.id = "read1";
  a.bases = "ACGTACGT";
  a.quality = {30, 31, 32, 33, 34, 35, 36, 37};
  seq::Read b;
  b.id = "read2 with description";
  b.bases = "TTNNA";
  b.quality = {2, 2, 2, 40, 40};
  set.reads = {a, b};
  return set;
}

TEST(Fastq, RoundTrip) {
  const auto original = two_reads();
  std::stringstream ss;
  io::write_fastq(ss, original);
  const auto parsed = io::read_fastq(ss);
  ASSERT_EQ(parsed.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(parsed.reads[i].id, original.reads[i].id);
    EXPECT_EQ(parsed.reads[i].bases, original.reads[i].bases);
    EXPECT_EQ(parsed.reads[i].quality, original.reads[i].quality);
  }
}

TEST(Fastq, DefaultQualityWhenMissing) {
  seq::ReadSet set;
  set.reads.push_back({"r", "ACGT", {}});
  std::stringstream ss;
  io::write_fastq(ss, set, 25);
  const auto parsed = io::read_fastq(ss);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.reads[0].quality,
            (std::vector<std::uint8_t>{25, 25, 25, 25}));
}

TEST(Fastq, RejectsMalformedRecords) {
  {
    std::stringstream ss("not-a-header\nACGT\n+\nIIII\n");
    EXPECT_THROW(io::read_fastq(ss), std::runtime_error);
  }
  {
    std::stringstream ss("@r\nACGT\n+\nII\n");  // quality length mismatch
    EXPECT_THROW(io::read_fastq(ss), std::runtime_error);
  }
  {
    std::stringstream ss("@r\nACGT\n");  // truncated
    EXPECT_THROW(io::read_fastq(ss), std::runtime_error);
  }
}

TEST(Fastq, HandlesCrLf) {
  std::stringstream ss("@r\r\nACGT\r\n+\r\nIIII\r\n");
  const auto parsed = io::read_fastq(ss);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.reads[0].bases, "ACGT");
}

TEST(Fasta, RoundTripMultiline) {
  seq::ReadSet set;
  set.reads.push_back({"genome", std::string(200, 'A'), {}});
  set.reads[0].bases[50] = 'C';
  std::stringstream ss;
  io::write_fasta(ss, set, 60);
  const auto parsed = io::read_fasta(ss);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.reads[0].bases, set.reads[0].bases);
  EXPECT_EQ(parsed.reads[0].id, "genome");
}

TEST(Fasta, MultipleRecordsAndBlankLines) {
  std::stringstream ss(">a\nACGT\n\n>b\nTT\nGG\n");
  const auto parsed = io::read_fasta(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.reads[0].bases, "ACGT");
  EXPECT_EQ(parsed.reads[1].bases, "TTGG");
}

TEST(Fasta, RejectsSequenceBeforeHeader) {
  std::stringstream ss("ACGT\n>a\nACGT\n");
  EXPECT_THROW(io::read_fasta(ss), std::runtime_error);
}

TEST(FastxFiles, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/ngs_test.fastq";
  const auto original = two_reads();
  io::write_fastq_file(path, original);
  const auto parsed = io::read_fastq_file(path);
  ASSERT_EQ(parsed.size(), original.size());
  EXPECT_EQ(parsed.reads[1].bases, original.reads[1].bases);
  EXPECT_THROW(io::read_fastq_file("/nonexistent/nope.fastq"),
               std::runtime_error);
}

TEST(FastxFiles, MissingFileErrorIsTypedAndNamesThePath) {
  try {
    io::read_fastq_file("/nonexistent/nope.fastq");
    FAIL() << "expected open failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
    EXPECT_NE(std::string(e.what()).find("/nonexistent/nope.fastq"),
              std::string::npos);
  }
}

TEST(Fastq, ParseErrorsCarryRecordAndLineLocation) {
  // Record 2 is malformed: quality shorter than bases, starting line 5.
  std::istringstream is(
      "@r1\nACGT\n+\nIIII\n@r2\nACGTACGT\n+\nIII\n@r3\nTT\n+\nII\n");
  io::FastqStreamReader reader(is, "reads.fastq");
  seq::Read r;
  EXPECT_TRUE(reader.next(r));
  try {
    reader.next(r);
    FAIL() << "expected parse failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kParse);
    const std::string what = e.what();
    EXPECT_NE(what.find("reads.fastq"), std::string::npos) << what;
    EXPECT_NE(what.find("record 2"), std::string::npos) << what;
    EXPECT_NE(what.find("line"), std::string::npos) << what;
  }
}

TEST(Fastq, FileParseErrorsNameTheFile) {
  const std::string path = testing::TempDir() + "/ngs_bad.fastq";
  {
    std::ofstream os(path);
    os << "@r1\nACGT\n+\nIIII\nACGT\n+\nIIII\n";  // record 2: no '@'
  }
  try {
    io::read_fastq_file(path);
    FAIL() << "expected parse failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kParse);
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("record 2"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(Fastq, SkipPolicyCountsAndResyncsPastBadRecords) {
  // Two good records bracketing one with a truncated quality line.
  std::istringstream is(
      "@r1\nACGT\n+\nIIII\n@bad\nACGT\n+\nII\n@r3\nTTTT\n+\nJJJJ\n");
  io::FastqStreamReader reader(is, "reads.fastq");
  reader.set_bad_record_policy(io::BadRecordPolicy::kSkip);
  std::vector<std::string> ids;
  seq::Read r;
  while (reader.next(r)) ids.push_back(r.id);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "r1");
  EXPECT_EQ(ids[1], "r3");
  EXPECT_EQ(reader.records(), 2u);
  EXPECT_GE(reader.records_skipped(), 1u);
}

TEST(Fastq, SkipPolicyHandlesTruncatedTail) {
  std::istringstream is("@r1\nACGT\n+\nIIII\n@r2\nACGT\n+\n");  // EOF mid-record
  io::FastqStreamReader reader(is);
  reader.set_bad_record_policy(io::BadRecordPolicy::kSkip);
  seq::Read r;
  EXPECT_TRUE(reader.next(r));
  EXPECT_FALSE(reader.next(r)) << "truncated tail is skipped, not fatal";
  EXPECT_EQ(reader.records_skipped(), 1u);
}

TEST(Fasta, ParseErrorsCarryNameAndLine) {
  std::istringstream is("ACGT\n");  // sequence before any header
  try {
    io::read_fasta(is, "genome.fasta");
    FAIL() << "expected parse failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kParse);
    const std::string what = e.what();
    EXPECT_NE(what.find("genome.fasta"), std::string::npos) << what;
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
  }
}

}  // namespace
