// Chaos suite: drives every fault-injection site in the catalog through
// the real production paths and asserts the failure handling the DESIGN
// "Failure model" section promises — typed errors with located messages,
// graceful degradation counted in the report, bounded transient retry,
// atomic output, and byte-identical results when a fault is absorbed.
//
// Chaos.EverySiteInCatalogFires is the sweep the asan preset runs: a
// site added to fault/sites.hpp without a scenario here fails the test.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "core/registry.hpp"
#include "fault/fault.hpp"
#include "fault/sites.hpp"
#include "index/spectrum_index.hpp"
#include "io/fastq_stream.hpp"
#include "io/fastx.hpp"
#include "kspec/kspectrum.hpp"
#include "mapreduce/job.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::instance().reset(); }
  void TearDown() override { fault::Registry::instance().reset(); }

  fault::Registry& reg() { return fault::Registry::instance(); }

  void expect_fired(const char* site) {
    EXPECT_GE(reg().stats(site).fires, 1u) << site << " never fired";
  }
};

std::string make_fastq(std::uint64_t seed) {
  util::Rng rng(seed);
  sim::GenomeSpec gspec;
  gspec.length = 5000;
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 8.0;
  const auto run = sim::simulate_reads(genome.sequence, model, cfg, rng);
  std::ostringstream os;
  io::write_fastq(os, run.reads);
  return os.str();
}

core::CorrectionPipeline::StreamFactory factory_for(std::string fastq) {
  return [fastq = std::move(fastq)] {
    return std::make_unique<std::istringstream>(fastq);
  };
}

/// Fresh sap pipeline (streaming two-pass path, small batches so pass 2
/// sees several batches).
core::CorrectionPipeline make_pipeline(
    core::PipelineOptions options = {}) {
  options.batch_size = options.batch_size != 4096 ? options.batch_size : 256;
  options.threads = 2;
  options.io_retry_backoff_ms = 0;
  return core::CorrectionPipeline(core::make_corrector("sap"),
                                  std::move(options));
}

core::PipelineResult run_pipeline(const std::string& fastq, std::string* out,
                                  core::PipelineOptions options = {}) {
  auto pipeline = make_pipeline(std::move(options));
  std::ostringstream os;
  auto result = pipeline.run(factory_for(fastq), os);
  if (out != nullptr) *out = os.str();
  return result;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "ngs_chaos_" + name;
}

/// Small deterministic spectrum + index file for the index.* sites.
std::string write_test_index(const std::string& name) {
  std::vector<seq::KmerCode> codes;
  std::vector<std::uint32_t> counts;
  for (seq::KmerCode c = 3; c < 2000; c += 7) {
    codes.push_back(c);
    counts.push_back(1 + static_cast<std::uint32_t>(c % 9));
  }
  const auto spectrum =
      kspec::KSpectrum::from_sorted_counts(std::move(codes),
                                           std::move(counts), 12);
  index::IndexBuildInfo build;
  build.k = 12;
  build.both_strands = true;
  build.input_reads = 10;
  build.input_bases = 360;
  build.max_read_length = 36;
  const std::string path = temp_path(name + ".ngsx");
  index::write_spectrum_index(path, spectrum, build);
  return path;
}

/// Deterministic version-2 sharded index (4 prefix shards, k=12) for
/// the index.shard_mmap site.
std::string write_sharded_test_index(const std::string& name) {
  constexpr int k = 12;
  constexpr int shard_bits = 2;
  index::IndexBuildInfo build;
  build.k = k;
  build.both_strands = true;
  build.input_reads = 10;
  build.input_bases = 360;
  build.max_read_length = 36;
  const std::string path = temp_path(name + ".ngsx");
  index::ShardedIndexWriter writer(path, build, shard_bits, 4);
  const seq::KmerCode span = seq::KmerCode{1} << (2 * k - shard_bits);
  for (std::uint32_t p = 0; p < 4; ++p) {
    std::vector<seq::KmerCode> codes;
    std::vector<std::uint32_t> counts;
    for (seq::KmerCode c = 3; c < 2000; c += 7) {
      codes.push_back(p * span + c);
      counts.push_back(1 + static_cast<std::uint32_t>(c % 9));
    }
    writer.append_shard(p, std::move(codes), std::move(counts));
  }
  writer.finish();
  return path;
}

/// Pipeline options that force the pass-1 build through the spill path
/// on the small chaos FASTQs (threshold = budget/24 instances, well
/// under the ~25k instances the 5000bp/8x input produces).
core::PipelineOptions budget_options() {
  core::PipelineOptions options;
  options.memory_budget_bytes = 200000;
  options.spill_dir = testing::TempDir();
  return options;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

// ---------------------------------------------------------------------
// Per-site scenarios. Each arms exactly the site under test (plus any
// site needed to reach it), drives the production path, and asserts
// both the visible behavior and that the site really fired.

TEST_F(ChaosTest, FastqOpenFailureIsTypedAndFatal) {
  reg().configure("io.fastq.open=n1");
  const std::string fastq = make_fastq(1);
  try {
    run_pipeline(fastq, nullptr);
    FAIL() << "expected open failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
    EXPECT_EQ(e.site(), fault::sites::kFastqOpen);
    EXPECT_EQ(tool_exit_code(e.kind()), 3);
  }
  expect_fired(fault::sites::kFastqOpen);
}

TEST_F(ChaosTest, FastqReadFailurePropagatesEvenInSkipMode) {
  reg().configure("io.fastq.read=n1");
  core::PipelineOptions options;
  options.on_bad_record = io::BadRecordPolicy::kSkip;
  const std::string fastq = make_fastq(2);
  try {
    run_pipeline(fastq, nullptr, options);
    FAIL() << "expected read failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo) << "I/O errors are never skippable";
    EXPECT_EQ(e.site(), fault::sites::kFastqRead);
  }
  expect_fired(fault::sites::kFastqRead);
}

TEST_F(ChaosTest, MalformedRecordFailsLocatedOrSkipsCounted) {
  const std::string fastq = make_fastq(3);

  reg().configure("io.fastq.malformed=n1");
  try {
    run_pipeline(fastq, nullptr);
    FAIL() << "expected parse failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kParse);
    const std::string what = e.what();
    EXPECT_NE(what.find("record 1"), std::string::npos) << what;
    EXPECT_NE(what.find("line"), std::string::npos) << what;
  }
  expect_fired(fault::sites::kFastqMalformed);

  // Same fault under --on-bad-record skip: the run completes, minus the
  // poisoned record, and says so.
  reg().reset();
  reg().configure("io.fastq.malformed=n1");
  core::PipelineOptions options;
  options.on_bad_record = io::BadRecordPolicy::kSkip;
  std::string out;
  const auto result = run_pipeline(fastq, &out, options);
  EXPECT_GE(result.reads_skipped, 1u);
  EXPECT_EQ(result.report.extra("reads_skipped"), result.reads_skipped);
  EXPECT_FALSE(out.empty());
}

TEST_F(ChaosTest, IndexOpenFailureIsIndexError) {
  const std::string path = write_test_index("open");
  reg().configure("index.open=n1");
  EXPECT_THROW((void)index::SpectrumIndex::load(path), index::IndexError);
  expect_fired(fault::sites::kIndexOpen);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, MmapFailureFallsBackToOwnedBuffer) {
  const std::string path = write_test_index("mmap");
  const auto direct = index::SpectrumIndex::load(path);
  reg().configure("index.mmap=n1");
  const auto fallback = index::SpectrumIndex::load(path);
  EXPECT_FALSE(fallback.info().mapped)
      << "mmap fault must force the owned-buffer path";
  EXPECT_EQ(fallback.info().checksum, direct.info().checksum);
  EXPECT_EQ(fallback.spectrum().size(), direct.spectrum().size());
  expect_fired(fault::sites::kIndexMmap);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, IndexShortReadIsTruncatedError) {
  const std::string path = write_test_index("short");
  reg().configure("index.short_read=n1");
  try {
    (void)index::SpectrumIndex::load(path);
    FAIL() << "expected truncation error";
  } catch (const index::IndexError& e) {
    EXPECT_EQ(e.index_kind(), index::IndexError::Kind::kTruncated);
    EXPECT_EQ(e.kind(), ErrorKind::kIndex);
    EXPECT_EQ(tool_exit_code(e.kind()), 4);
  }
  expect_fired(fault::sites::kIndexShortRead);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, IndexChecksumFaultIsChecksumError) {
  const std::string path = write_test_index("checksum");
  reg().configure("index.checksum=n1");
  index::LoadOptions options;
  options.verify_checksums = true;
  try {
    (void)index::SpectrumIndex::load(path, options);
    FAIL() << "expected checksum error";
  } catch (const index::IndexError& e) {
    EXPECT_EQ(e.index_kind(), index::IndexError::Kind::kChecksum);
  }
  expect_fired(fault::sites::kIndexChecksum);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, IndexWriteFailureLeavesNoFileBehind) {
  reg().configure("index.write=n1");
  const std::string path = temp_path("write.ngsx");
  EXPECT_THROW(write_test_index("write"), index::IndexError);
  expect_fired(fault::sites::kIndexWrite);
  EXPECT_FALSE(file_exists(path)) << "failed write must not leave " << path;
  EXPECT_FALSE(file_exists(path + ".tmp"))
      << "failed write must clean up its temp file";
}

TEST_F(ChaosTest, SpillWriteFailureIsTypedIoError) {
  reg().configure("kspec.spill.write=n1");
  try {
    run_pipeline(make_fastq(11), nullptr, budget_options());
    FAIL() << "expected spill write failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
    EXPECT_EQ(e.site(), fault::sites::kSpillWrite);
    EXPECT_EQ(tool_exit_code(e.kind()), 3);
  }
  expect_fired(fault::sites::kSpillWrite);
}

TEST_F(ChaosTest, SpillReadFailureIsTypedIoError) {
  reg().configure("kspec.spill.read=n1");
  try {
    run_pipeline(make_fastq(12), nullptr, budget_options());
    FAIL() << "expected spill read failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
    EXPECT_EQ(e.site(), fault::sites::kSpillRead);
  }
  expect_fired(fault::sites::kSpillRead);
}

TEST_F(ChaosTest, ShardMmapFaultFallsBackToOwnedBuffers) {
  const std::string path = write_sharded_test_index("shard_mmap");
  const auto direct = index::SpectrumIndex::load(path);
  reg().configure("index.shard_mmap=always");
  const auto fallback = index::SpectrumIndex::load(path);
  const auto& a = direct.spectrum();
  const auto& b = fallback.spectrum();
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(b.code_at(i), a.code_at(i));
    EXPECT_EQ(b.count_at(i), a.count_at(i));
  }
  expect_fired(fault::sites::kShardMmap);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, TransientOpenFaultIsRetriedAndAbsorbed) {
  const std::string fastq = make_fastq(4);
  std::string clean;
  run_pipeline(fastq, &clean);

  reg().configure("core.open_input.transient=n1");
  std::string out;
  const auto result = run_pipeline(fastq, &out);
  EXPECT_GE(result.io_retries, 1u);
  EXPECT_EQ(result.report.extra("io_retries"), result.io_retries);
  EXPECT_EQ(out, clean) << "an absorbed transient must not change output";
  expect_fired(fault::sites::kOpenInputTransient);
}

TEST_F(ChaosTest, TransientOpenFaultExhaustsBudget) {
  reg().configure("core.open_input.transient=always");
  core::PipelineOptions options;
  options.io_retry_attempts = 2;
  try {
    run_pipeline(make_fastq(5), nullptr, options);
    FAIL() << "expected retry exhaustion";
  } catch (const Error& e) {
    EXPECT_TRUE(e.transient());
    EXPECT_EQ(e.site(), fault::sites::kOpenInputTransient);
  }
  EXPECT_GE(reg().stats(fault::sites::kOpenInputTransient).fires, 2u);
}

TEST_F(ChaosTest, Pass2BatchFaultIsSalvagedByteIdentically) {
  const std::string fastq = make_fastq(6);
  std::string clean;
  run_pipeline(fastq, &clean);

  reg().configure("core.pass2.batch=n1");
  std::string out;
  const auto result = run_pipeline(fastq, &out);
  EXPECT_GE(result.report.extra("batches_salvaged"), 1u);
  EXPECT_EQ(result.reads_failed, 0u)
      << "per-read salvage should re-correct every read";
  EXPECT_EQ(out, clean)
      << "salvaged batch must produce byte-identical output";
  expect_fired(fault::sites::kPass2Batch);
}

TEST_F(ChaosTest, Pass2ReadFaultDegradesExactlyOneRead) {
  const std::string fastq = make_fastq(7);
  std::string clean;
  const auto clean_result = run_pipeline(fastq, &clean);

  // Fail every batch so every read goes through per-read salvage, then
  // fail exactly one read's salvage: that read passes through
  // uncorrected, the rest of the run is unaffected.
  reg().configure("core.pass2.batch=always,core.pass2.read=n1");
  std::string out;
  const auto result = run_pipeline(fastq, &out);
  EXPECT_EQ(result.reads_failed, 1u);
  EXPECT_EQ(result.report.extra("reads_failed"), 1u);
  EXPECT_EQ(result.report.reads, clean_result.report.reads)
      << "degradation must not drop reads";
  // Same record structure: line count (4 per record) is preserved.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(clean.begin(), clean.end(), '\n'));
  expect_fired(fault::sites::kPass2Read);
}

TEST_F(ChaosTest, OutputWriteFaultAbortsRunFileAtomically) {
  const std::string fastq = make_fastq(8);
  const std::string in_path = temp_path("in.fastq");
  const std::string out_path = temp_path("out.fastq");
  {
    std::ofstream os(in_path);
    os << fastq;
  }
  reg().configure("core.output.write=n1");
  auto pipeline = make_pipeline();
  try {
    pipeline.run_file(in_path, out_path);
    FAIL() << "expected write failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
    EXPECT_EQ(e.site(), fault::sites::kOutputWrite);
  }
  expect_fired(fault::sites::kOutputWrite);
  EXPECT_FALSE(file_exists(out_path))
      << "failed run must not leave a truncated output FASTQ";
  EXPECT_FALSE(file_exists(out_path + ".tmp"))
      << "failed run must clean up its temp file";
  std::remove(in_path.c_str());
}

TEST_F(ChaosTest, PipelineReaderFaultTearsDownOverlappedRunTyped) {
  // Fires on the pass-1 read-ahead thread first: the error must cross
  // the bounded queue back to the calling thread as the original typed
  // error — and the test completing at all proves nothing hung.
  reg().configure("core.pipeline.reader=n1");
  try {
    run_pipeline(make_fastq(13), nullptr);
    FAIL() << "expected reader-task failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
    EXPECT_EQ(e.site(), fault::sites::kPipelineReader);
    EXPECT_EQ(tool_exit_code(e.kind()), 3);
  }
  expect_fired(fault::sites::kPipelineReader);

  // A buffered-input method has no pass-1 reader task, so the first
  // firing lands in pass 2's executor producer instead: same typed
  // teardown through the full reorder pipeline.
  reg().reset();
  reg().configure("core.pipeline.reader=n1");
  core::PipelineOptions buffered;
  buffered.batch_size = 256;
  buffered.threads = 2;
  core::CorrectionPipeline reptile(core::make_corrector("reptile"),
                                   buffered);
  std::ostringstream os;
  try {
    reptile.run(factory_for(make_fastq(13)), os);
    FAIL() << "expected pass-2 reader-task failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.site(), fault::sites::kPipelineReader);
  }
  expect_fired(fault::sites::kPipelineReader);

  // With --io-overlap off there is no reader task: the armed site is
  // simply never reached and the run completes clean.
  reg().reset();
  reg().configure("core.pipeline.reader=always");
  core::PipelineOptions serial;
  serial.io_overlap = false;
  std::string out;
  const auto result = run_pipeline(make_fastq(13), &out, serial);
  EXPECT_FALSE(result.overlapped);
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(reg().stats(fault::sites::kPipelineReader).fires, 0u);
}

TEST_F(ChaosTest, PipelineWriterFaultAbortsRunFileAtomically) {
  const std::string fastq = make_fastq(14);
  const std::string in_path = temp_path("wfault_in.fastq");
  const std::string out_path = temp_path("wfault_out.fastq");
  {
    std::ofstream os(in_path);
    os << fastq;
  }
  reg().configure("core.pipeline.writer=n1");
  auto pipeline = make_pipeline();
  try {
    pipeline.run_file(in_path, out_path);
    FAIL() << "expected writer-task failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
    EXPECT_EQ(e.site(), fault::sites::kPipelineWriter);
  }
  expect_fired(fault::sites::kPipelineWriter);
  EXPECT_FALSE(file_exists(out_path))
      << "failed overlapped run must not leave a truncated output FASTQ";
  EXPECT_FALSE(file_exists(out_path + ".tmp"))
      << "failed overlapped run must clean up its temp file";
  std::remove(in_path.c_str());
}

TEST_F(ChaosTest, MapTaskFaultIsRetriedFromItsSplit) {
  std::vector<std::pair<int, std::string>> docs;
  for (int i = 0; i < 32; ++i) docs.emplace_back(i, "x");
  using CountJob = mapreduce::Job<int, std::string, std::string, int,
                                  std::string, int>;
  const auto map_fn = [](const int&, const std::string& s,
                         mapreduce::Emitter<std::string, int>& out) {
    out.emit(s, 1);
  };
  const auto reduce_fn = [](const std::string& k, std::span<const int> vs,
                            mapreduce::Emitter<std::string, int>& out) {
    out.emit(k, static_cast<int>(vs.size()));
  };

  reg().configure("mapreduce.map_task=n1");
  mapreduce::JobCounters counters;
  const auto result =
      CountJob::run(docs, map_fn, reduce_fn, {}, &counters);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].second, 32) << "retry must not duplicate records";
  EXPECT_GE(counters.map_task_failures, 1u);
  expect_fired(fault::sites::kMapTask);

  // Budget exhaustion surfaces as the typed TaskFailedError.
  reg().reset();
  reg().configure("mapreduce.map_task=always");
  mapreduce::JobConfig config;
  config.max_task_attempts = 2;
  config.num_map_tasks = 1;
  try {
    CountJob::run(docs, map_fn, reduce_fn, config);
    FAIL() << "expected retry-budget exhaustion";
  } catch (const mapreduce::TaskFailedError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTask);
    const std::string what = e.what();
    EXPECT_NE(what.find("retry budget"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------
// The sweep: every catalog site must fire at least once through a real
// production path. Forgetting to add a scenario for a new site fails
// here, not silently.

/// One short daemon conversation that reaches every service.* site:
/// accept (acceptor poll loop), frame read/write (client and server
/// FrameChannels share the process-global registry — either side
/// firing counts), a corrected batch on a worker, and an epoch
/// rebuild. The armed fault may surface anywhere in the conversation
/// as a typed error; the sweep only asserts coverage. service.reload
/// also guards the initial epoch build, so even start() may throw.
void run_service_scenario(const std::string& index_path) {
  service::ServiceOptions options;
  options.socket_path = testing::TempDir() + "ngs_chaos_" +
                        std::to_string(::getpid()) + "_svc.sock";
  options.workers = 1;
  service::IndexRegistryConfig registry;
  registry.index_paths.push_back(index_path);
  service::CorrectionServer server(options, registry);
  try {
    server.start();
    try {
      service::Client client(options.socket_path);
      client.connect();
      service::HelloRequest hello;
      hello.method = "sap";
      hello.k = 12;  // the sweep index's k
      hello.genome_length = 5000;
      (void)client.hello(hello);
      service::ReadBatch batch;
      batch.reads.push_back({"r", std::string(36, 'A'), {}});
      client.send_request(batch);
      (void)client.read_reply();
    } catch (const Error&) {
    }
    try {
      (void)server.reload();
    } catch (const Error&) {
    }
  } catch (const Error&) {
  }
  server.stop();
}

TEST_F(ChaosTest, EverySiteInCatalogFires) {
  const std::string fastq = make_fastq(9);
  const std::string index_path = write_test_index("sweep");
  const std::string sharded_path = write_sharded_test_index("sweep_sharded");
  const std::string in_path = temp_path("sweep_in.fastq");
  const std::string out_path = temp_path("sweep_out.fastq");
  {
    std::ofstream os(in_path);
    os << fastq;
  }

  for (const char* site : fault::sites::kAll) {
    reg().reset();
    const std::string name(site);
    if (name == fault::sites::kPass2Read) {
      // The per-read site is only reachable from the salvage path, so
      // the batch site must fail first.
      reg().configure("core.pass2.batch=always,core.pass2.read=n1");
    } else {
      reg().configure(name + "=n1");
    }
    try {
      if (name == fault::sites::kShardMmap) {
        // The per-shard mmap site only exists on the sharded (v2) load
        // path, and only when shards actually materialize.
        index::LoadOptions options;
        options.validate_payload = true;
        (void)index::SpectrumIndex::load(sharded_path, options);
      } else if (name.rfind("index.", 0) == 0) {
        if (name == fault::sites::kIndexWrite) {
          (void)write_test_index("sweep_w");
        } else {
          index::LoadOptions options;
          options.verify_checksums = true;
          (void)index::SpectrumIndex::load(index_path, options);
        }
      } else if (name == fault::sites::kSpillWrite ||
                 name == fault::sites::kSpillRead) {
        // Spill sites are only reachable from a budget-constrained
        // pass-1 build.
        auto pipeline = make_pipeline(budget_options());
        (void)pipeline.run_file(in_path, out_path);
      } else if (name.rfind("service.", 0) == 0) {
        run_service_scenario(index_path);
      } else if (name == fault::sites::kMapTask) {
        using CountJob = mapreduce::Job<int, std::string, std::string, int,
                                        std::string, int>;
        (void)CountJob::run(
            {{0, "x"}},
            [](const int&, const std::string& s,
               mapreduce::Emitter<std::string, int>& out) { out.emit(s, 1); },
            [](const std::string& k, std::span<const int> vs,
               mapreduce::Emitter<std::string, int>& out) {
              out.emit(k, static_cast<int>(vs.size()));
            });
      } else {
        auto pipeline = make_pipeline();
        (void)pipeline.run_file(in_path, out_path);
      }
    } catch (const Error&) {
      // Expected for the fatal sites; the sweep only asserts coverage.
    }
    EXPECT_GE(reg().stats(site).fires, 1u)
        << site << " has no scenario that reaches it";
  }

  std::remove(index_path.c_str());
  std::remove(sharded_path.c_str());
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

// With nothing armed, the hardened pipeline is the same pipeline:
// byte-identical output and no degradation extras in the report.

TEST_F(ChaosTest, DisarmedRegistryChangesNothing) {
  const std::string fastq = make_fastq(10);
  std::string out;
  const auto result = run_pipeline(fastq, &out);
  EXPECT_EQ(result.reads_skipped, 0u);
  EXPECT_EQ(result.reads_failed, 0u);
  EXPECT_EQ(result.io_retries, 0u);
  EXPECT_EQ(result.report.extra("reads_skipped"), 0u);
  EXPECT_EQ(result.report.extra("reads_failed"), 0u);
  EXPECT_EQ(result.report.extra("io_retries"), 0u);
  EXPECT_EQ(result.report.extra("batches_salvaged"), 0u);
  EXPECT_TRUE(reg().all_stats().empty());
  EXPECT_FALSE(out.empty());
}

}  // namespace
