#include <gtest/gtest.h>

#include <set>

#include "closet/closet.hpp"
#include "closet/similarity.hpp"
#include "seq/alphabet.hpp"
#include "eval/ari.hpp"
#include "sim/metagenome.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;

TEST(Similarity, KmerHashesAreStrandInvariant) {
  const auto fwd = closet::kmer_hashes("ACGTACGTACGTACGTACGT", 15);
  const auto rev = closet::kmer_hashes(
      seq::reverse_complement("ACGTACGTACGTACGTACGT"), 15);
  EXPECT_EQ(fwd, rev);
  EXPECT_FALSE(fwd.empty());
}

TEST(Similarity, IdenticalReadsScoreOne) {
  const std::string r = "ACGTTGCAAGGCTTACGGATCCAGTTACGGTA";
  const auto h = closet::kmer_hashes(r, 15);
  EXPECT_DOUBLE_EQ(closet::set_similarity(h, h), 1.0);
}

TEST(Similarity, ContainmentScoresOne) {
  util::Rng rng(3);
  std::string gene;
  for (int i = 0; i < 400; ++i) {
    gene.push_back(seq::code_to_base(static_cast<std::uint8_t>(rng.below(4))));
  }
  const auto whole = closet::kmer_hashes(gene, 15);
  const auto part = closet::kmer_hashes(gene.substr(100, 120), 15);
  EXPECT_GT(closet::set_similarity(whole, part), 0.99);
}

TEST(Similarity, UnrelatedReadsScoreNearZero) {
  util::Rng rng(4);
  auto random_read = [&] {
    std::string s;
    for (int i = 0; i < 300; ++i) {
      s.push_back(seq::code_to_base(static_cast<std::uint8_t>(rng.below(4))));
    }
    return s;
  };
  const auto a = closet::kmer_hashes(random_read(), 15);
  const auto b = closet::kmer_hashes(random_read(), 15);
  EXPECT_LT(closet::set_similarity(a, b), 0.02);
}

TEST(Similarity, SketchPartitionsHashes) {
  const auto h = closet::kmer_hashes(
      "ACGTTGCAAGGCTTACGGATCCAGTTACGGTAACGTGGCATCAGGTTAC", 15);
  std::size_t total = 0;
  for (std::uint64_t l = 0; l < 8; ++l) {
    total += closet::sketch_of(h, 8, l).size();
  }
  EXPECT_EQ(total, h.size());
}

TEST(Similarity, IntersectionSize) {
  EXPECT_EQ(closet::intersection_size({1, 2, 3}, {2, 3, 4}), 2u);
  EXPECT_EQ(closet::intersection_size({}, {1}), 0u);
}

TEST(Similarity, BandedAlignmentIdentity) {
  EXPECT_DOUBLE_EQ(closet::banded_alignment_identity("ACGTACGT", "ACGTACGT"),
                   1.0);
  // One substitution in 8 columns.
  EXPECT_NEAR(closet::banded_alignment_identity("ACGTACGT", "ACGAACGT"),
              7.0 / 8.0, 1e-9);
  // A single insertion shifts but the band absorbs it.
  EXPECT_GT(closet::banded_alignment_identity("ACGTACGTACGT", "ACGTTACGTACGT"),
            0.9);
  EXPECT_LT(closet::banded_alignment_identity("AAAAAAAA", "CCCCCCCC"), 0.01);
}

TEST(Closet, PairKeyOrdersEndpoints) {
  EXPECT_EQ(closet::pair_key(5, 3), closet::pair_key(3, 5));
  EXPECT_EQ(closet::pair_key(3, 5) >> 32, 3u);
}

TEST(Closet, ToPartitionPrefersLargestCluster) {
  std::vector<closet::Cluster> clusters(2);
  clusters[0].verts = {0, 1, 2};
  clusters[1].verts = {2, 3};
  const auto labels = closet::Closet::to_partition(clusters, 5);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[2]);  // read 2 joins the larger cluster
  EXPECT_EQ(labels[3], 5u + 1u);
  EXPECT_EQ(labels[4], 4u);  // untouched singleton
}

class ClosetPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(55);
    sim::TaxonomySpec tspec;
    tspec.branching = {3, 3, 3};
    tspec.divergence = {0.12, 0.06, 0.02};
    taxonomy_ = sim::simulate_taxonomy(tspec, rng);
    sim::MetagenomeReadConfig cfg;
    cfg.num_reads = 1200;
    cfg.error_rate = 0.003;
    sample_ = sim::simulate_metagenome_reads(taxonomy_, cfg, rng);
  }
  sim::Taxonomy taxonomy_;
  sim::MetagenomeSample sample_;
};

TEST_F(ClosetPipeline, EndToEndProducesClusters) {
  closet::ClosetParams params;
  params.thresholds = {0.95, 0.90};
  closet::Closet closet(params);
  const auto result = closet.run(sample_.reads);

  EXPECT_GT(result.confirmed_edges, 0u);
  EXPECT_GE(result.unique_candidate_pairs, result.confirmed_edges);
  ASSERT_EQ(result.levels.size(), 2u);
  EXPECT_GT(result.levels[0].resulting_clusters, 0u);
  // Lower threshold admits at least as many edges.
  EXPECT_GE(result.levels[1].edges_active, result.levels[0].edges_active);

  // Every cluster satisfies the gamma density invariant.
  for (const auto& level : result.levels) {
    for (const auto& c : level.clusters) {
      EXPECT_GE(c.density() + 1e-9, params.gamma);
      // Vertex list is sorted and unique.
      ASSERT_TRUE(std::is_sorted(c.verts.begin(), c.verts.end()));
      ASSERT_EQ(std::set<std::uint32_t>(c.verts.begin(), c.verts.end()).size(),
                c.verts.size());
    }
  }
}

TEST_F(ClosetPipeline, EdgesConnectMostlySameSpecies) {
  closet::ClosetParams params;
  params.thresholds = {0.90};
  closet::Closet closet(params);
  const auto result = closet.run(sample_.reads);
  ASSERT_GT(result.confirmed_edges, 10u);
  std::uint64_t same = 0;
  for (const auto& e : result.edges) {
    if (e.score >= 0.90 &&
        sample_.species_of[e.a] == sample_.species_of[e.b]) {
      ++same;
    }
  }
  std::uint64_t total = 0;
  for (const auto& e : result.edges) total += (e.score >= 0.90);
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(total), 0.9);
}

TEST_F(ClosetPipeline, ClusteringAgreesWithSpeciesTruth) {
  closet::ClosetParams params;
  params.thresholds = {0.90};
  closet::Closet closet(params);
  const auto result = closet.run(sample_.reads);
  const auto labels =
      closet::Closet::to_partition(result.levels[0].clusters,
                                   sample_.reads.size());
  const auto ari = eval::adjusted_rand_index(labels, sample_.species_of);
  // Clusters must be far better than chance against species truth.
  EXPECT_GT(ari.ari, 0.2);
}

TEST_F(ClosetPipeline, StageTimesCoverAllStages) {
  closet::ClosetParams params;
  params.thresholds = {0.95};
  closet::Closet closet(params);
  const auto result = closet.run(sample_.reads);
  EXPECT_GT(result.times.get("sketching"), 0.0);
  EXPECT_GT(result.times.get("validation"), 0.0);
  EXPECT_GE(result.times.get("clustering"), 0.0);
}

TEST(ClosetSmall, HandcraftedQuasiClique) {
  // Four reads: three near-identical (one species), one unrelated.
  util::Rng rng(9);
  std::string gene;
  for (int i = 0; i < 300; ++i) {
    gene.push_back(seq::code_to_base(static_cast<std::uint8_t>(rng.below(4))));
  }
  std::string other;
  for (int i = 0; i < 300; ++i) {
    other.push_back(seq::code_to_base(static_cast<std::uint8_t>(rng.below(4))));
  }
  seq::ReadSet reads;
  reads.reads.push_back({"a", gene, {}});
  reads.reads.push_back({"b", gene.substr(0, 280), {}});
  reads.reads.push_back({"c", seq::reverse_complement(gene.substr(10, 280)), {}});
  reads.reads.push_back({"d", other, {}});

  closet::ClosetParams params;
  params.thresholds = {0.9};
  params.cmin = 0.5;
  closet::Closet closet(params);
  const auto result = closet.run(reads);
  ASSERT_EQ(result.levels.size(), 1u);
  ASSERT_EQ(result.levels[0].resulting_clusters, 1u);
  EXPECT_EQ(result.levels[0].clusters[0].verts,
            (std::vector<std::uint32_t>{0, 1, 2}));
}

}  // namespace
