#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "seq/alphabet.hpp"
#include "seq/kmer.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs::seq;

TEST(Alphabet, CodesRoundTrip) {
  for (char c : {'A', 'C', 'G', 'T'}) {
    EXPECT_EQ(code_to_base(base_to_code(c)), c);
  }
  EXPECT_EQ(base_to_code('N'), kInvalidBase);
  EXPECT_EQ(base_to_code('x'), kInvalidBase);
  EXPECT_EQ(base_to_code('a'), base_to_code('A'));
}

TEST(Alphabet, Complement) {
  EXPECT_EQ(complement_base('A'), 'T');
  EXPECT_EQ(complement_base('T'), 'A');
  EXPECT_EQ(complement_base('C'), 'G');
  EXPECT_EQ(complement_base('G'), 'C');
  EXPECT_EQ(complement_base('N'), 'N');
}

TEST(Alphabet, ReverseComplement) {
  EXPECT_EQ(reverse_complement("ACGT"), "ACGT");
  EXPECT_EQ(reverse_complement("AACG"), "CGTT");
  EXPECT_EQ(reverse_complement("ANT"), "ANT");
  EXPECT_EQ(reverse_complement(""), "");
}

TEST(Alphabet, HammingDistance) {
  EXPECT_EQ(hamming_distance("ACGT", "ACGT"), 0u);
  EXPECT_EQ(hamming_distance("ACGT", "TCGA"), 2u);
  EXPECT_EQ(hamming_distance("", ""), 0u);
}

TEST(Kmer, EncodeDecodeRoundTrip) {
  ngs::util::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const int k = 1 + static_cast<int>(rng.below(32));
    std::string s;
    for (int i = 0; i < k; ++i) {
      s.push_back(code_to_base(static_cast<std::uint8_t>(rng.below(4))));
    }
    const auto code = encode_kmer(s);
    ASSERT_TRUE(code.has_value());
    EXPECT_EQ(decode_kmer(*code, k), s);
  }
}

TEST(Kmer, EncodeRejectsAmbiguous) {
  EXPECT_FALSE(encode_kmer("ACNG").has_value());
  EXPECT_EQ(encode_kmer_lossy("ACNG"), encode_kmer("ACAG").value());
}

TEST(Kmer, LexicographicOrderMatchesNumericOrder) {
  const auto a = encode_kmer("AAAC").value();
  const auto b = encode_kmer("AACA").value();
  const auto c = encode_kmer("TTTT").value();
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(Kmer, BaseAccessAndMutation) {
  const auto code = encode_kmer("ACGT").value();
  EXPECT_EQ(kmer_base(code, 4, 0), base_to_code('A'));
  EXPECT_EQ(kmer_base(code, 4, 3), base_to_code('T'));
  const auto mutated = kmer_with_base(code, 4, 1, base_to_code('T'));
  EXPECT_EQ(decode_kmer(mutated, 4), "ATGT");
}

TEST(Kmer, ReverseComplementPacked) {
  for (const char* s : {"ACGT", "AAAA", "GATTACA", "CCGGAATT"}) {
    const int k = static_cast<int>(std::string(s).size());
    const auto code = encode_kmer(s).value();
    EXPECT_EQ(decode_kmer(reverse_complement(code, k), k),
              reverse_complement(std::string_view(s)))
        << s;
  }
}

TEST(Kmer, ReverseComplementIsInvolution) {
  ngs::util::Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const int k = 1 + static_cast<int>(rng.below(32));
    const KmerCode code =
        rng() & (k == 32 ? ~KmerCode{0} : ((KmerCode{1} << (2 * k)) - 1));
    EXPECT_EQ(reverse_complement(reverse_complement(code, k), k), code);
  }
}

TEST(Kmer, HammingOnPackedCodes) {
  const auto a = encode_kmer("ACGTACGTACGT").value();
  const auto b = encode_kmer("ACGTACGTACGT").value();
  EXPECT_EQ(kmer_hamming(a, b), 0);
  const auto c = encode_kmer("TCGTACGAACGT").value();
  EXPECT_EQ(kmer_hamming(a, c), 2);
}

TEST(Kmer, HammingAgreesWithStringVersion) {
  ngs::util::Rng rng(21);
  for (int trial = 0; trial < 500; ++trial) {
    const int k = 1 + static_cast<int>(rng.below(32));
    std::string s1, s2;
    for (int i = 0; i < k; ++i) {
      s1.push_back(code_to_base(static_cast<std::uint8_t>(rng.below(4))));
      s2.push_back(code_to_base(static_cast<std::uint8_t>(rng.below(4))));
    }
    EXPECT_EQ(
        static_cast<std::size_t>(kmer_hamming(encode_kmer(s1).value(),
                                              encode_kmer(s2).value())),
        hamming_distance(s1, s2));
  }
}

TEST(Kmer, ConcatWithOverlap) {
  const auto a = encode_kmer("ACGT").value();
  const auto b = encode_kmer("GTCA").value();  // overlap "GT" with a's suffix
  const auto t = concat_kmers(a, 4, b, 4, 2);
  EXPECT_EQ(decode_kmer(t, 6), "ACGTCA");
  const auto t0 = concat_kmers(a, 4, b, 4, 0);
  EXPECT_EQ(decode_kmer(t0, 8), "ACGTGTCA");
}

TEST(Kmer, ExtractSkipsAmbiguousWindows) {
  std::vector<std::pair<KmerCode, std::uint32_t>> kmers;
  extract_kmers("ACGTNACGTT", 4, kmers);
  // Valid windows: positions 0 ("ACGT") and 5,6 ("ACGT","CGTT").
  ASSERT_EQ(kmers.size(), 3u);
  EXPECT_EQ(kmers[0].second, 0u);
  EXPECT_EQ(kmers[1].second, 5u);
  EXPECT_EQ(kmers[2].second, 6u);
  EXPECT_EQ(decode_kmer(kmers[2].first, 4), "CGTT");
}

TEST(Kmer, ExtractHandlesShortInput) {
  std::vector<KmerCode> codes;
  extract_kmer_codes("ACG", 4, codes);
  EXPECT_TRUE(codes.empty());
}

TEST(Kmer, NeighborEnumerationCountsAndDistances) {
  const int k = 6;
  const auto code = encode_kmer("ACGTCA").value();
  for (int d = 1; d <= 2; ++d) {
    std::vector<KmerCode> nbrs;
    enumerate_neighbors(code, k, d, nbrs);
    // Exact count: sum_{e=1..d} C(k,e) 3^e.
    std::size_t expect = 0;
    double cum = 1;
    for (int e = 1; e <= d; ++e) {
      cum = cum * (k - e + 1) / e;
      expect += static_cast<std::size_t>(cum * std::pow(3.0, e) + 0.5);
    }
    EXPECT_EQ(nbrs.size(), expect) << "d=" << d;
    // No duplicates, all within distance, none equal to the original.
    std::set<KmerCode> unique(nbrs.begin(), nbrs.end());
    EXPECT_EQ(unique.size(), nbrs.size());
    for (const auto n : nbrs) {
      const int hd = kmer_hamming(code, n);
      EXPECT_GE(hd, 1);
      EXPECT_LE(hd, d);
    }
  }
}

}  // namespace
