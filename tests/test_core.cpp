// Tests for the ngs::core layer: the corrector registry, the streaming
// FASTQ reader, and the two-pass CorrectionPipeline — in particular the
// guarantee that the pipeline's file-to-file output is byte-identical to
// the in-memory Corrector::correct_all path for every registered method.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "core/corrector.hpp"
#include "core/pipeline.hpp"
#include "core/registry.hpp"
#include "io/fastq_stream.hpp"
#include "io/fastx.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;

sim::SimulatedReads make_run(std::uint64_t seed, double coverage = 25.0) {
  util::Rng rng(seed);
  sim::GenomeSpec gspec;
  gspec.length = 20000;
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = coverage;
  return sim::simulate_reads(genome.sequence, model, cfg, rng);
}

std::string to_fastq(const seq::ReadSet& reads) {
  std::ostringstream os;
  io::write_fastq(os, reads);
  return os.str();
}

core::CorrectionPipeline::StreamFactory factory_for(std::string fastq) {
  return [fastq = std::move(fastq)] {
    return std::make_unique<std::istringstream>(fastq);
  };
}

TEST(CorrectionReport, BumpExtraMergeSummary) {
  core::CorrectionReport a;
  a.reads = 10;
  a.reads_changed = 2;
  a.bases_changed = 3;
  a.bump("tiles", 5);
  a.bump("tiles", 2);
  EXPECT_EQ(a.extra("tiles"), 7u);
  EXPECT_EQ(a.extra("missing"), 0u);

  core::CorrectionReport b;
  b.reads = 1;
  b.bump("other", 1);
  b.bump("tiles", 1);
  a.merge(b);
  EXPECT_EQ(a.reads, 11u);
  EXPECT_EQ(a.extra("tiles"), 8u);
  EXPECT_EQ(a.extra("other"), 1u);
  const std::string s = a.summary();
  EXPECT_NE(s.find("11 reads"), std::string::npos);
  EXPECT_NE(s.find("tiles=8"), std::string::npos);
}

TEST(Registry, ListsAllSevenBuiltins) {
  const auto methods = core::registered_methods();
  std::set<std::string> names;
  for (const auto& m : methods) names.insert(m.name);
  for (const char* expected :
       {"reptile", "redeem", "hybrid", "shrec", "sap", "hitec", "freclu"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
  EXPECT_EQ(names.size(), methods.size()) << "duplicate registrations";
}

TEST(Registry, UnknownMethodThrowsWithKnownNames) {
  try {
    core::make_corrector("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("reptile"), std::string::npos);
  }
}

TEST(Registry, StreamingFlagMatchesSpectrumK) {
  for (const auto& m : core::registered_methods()) {
    core::CorrectorConfig config;
    const auto corrector = core::make_corrector(m.name, config);
    EXPECT_EQ(m.streaming, corrector->spectrum_k() > 0) << m.name;
    EXPECT_FALSE(corrector->ready()) << m.name;
  }
}

TEST(Corrector, CorrectBeforeBuildThrows) {
  const auto corrector = core::make_corrector("sap");
  core::CorrectionReport report;
  seq::ReadSet reads;
  EXPECT_THROW(corrector->correct_all(reads, report), std::logic_error);
}

TEST(FastqStreamReader, MatchesReadFastq) {
  const auto run = make_run(3);
  const std::string fastq = to_fastq(run.reads);

  std::istringstream is(fastq);
  io::FastqStreamReader reader(is);
  seq::Read r;
  std::size_t i = 0;
  while (reader.next(r)) {
    ASSERT_LT(i, run.reads.size());
    EXPECT_EQ(r.id, run.reads.reads[i].id);
    EXPECT_EQ(r.bases, run.reads.reads[i].bases);
    ++i;
  }
  EXPECT_EQ(i, run.reads.size());
  EXPECT_EQ(reader.records(), run.reads.size());
}

TEST(FastqStreamReader, BatchSizeOneAndOversizedBatch) {
  const auto run = make_run(5, 2.0);
  const std::string fastq = to_fastq(run.reads);

  // Batch size 1: one record per call, then 0 at EOF.
  {
    std::istringstream is(fastq);
    io::FastqStreamReader reader(is);
    std::vector<seq::Read> batch;
    std::size_t total = 0;
    while (true) {
      batch.clear();
      const std::size_t n = reader.read_batch(batch, 1);
      if (n == 0) break;
      ASSERT_EQ(n, 1u);
      ASSERT_EQ(batch.size(), 1u);
      EXPECT_EQ(batch[0].bases, run.reads.reads[total].bases);
      ++total;
    }
    EXPECT_EQ(total, run.reads.size());
  }

  // Batch larger than the file: everything arrives in one call.
  {
    std::istringstream is(fastq);
    io::FastqStreamReader reader(is);
    std::vector<seq::Read> batch;
    EXPECT_EQ(reader.read_batch(batch, run.reads.size() * 10),
              run.reads.size());
    EXPECT_EQ(batch.size(), run.reads.size());
    EXPECT_EQ(reader.read_batch(batch, 8), 0u);
  }
}

TEST(FastqStreamReader, AppendsWithoutClearing) {
  std::istringstream is("@a\nACGT\n+\nIIII\n@b\nTTTT\n+\nIIII\n");
  io::FastqStreamReader reader(is);
  std::vector<seq::Read> batch;
  EXPECT_EQ(reader.read_batch(batch, 1), 1u);
  EXPECT_EQ(reader.read_batch(batch, 1), 1u);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, "a");
  EXPECT_EQ(batch[1].id, "b");
}

TEST(FastqStreamReader, TruncatedRecordThrows) {
  // Record cut off after the '+' separator.
  std::istringstream is("@a\nACGT\n+\nIIII\n@b\nTTTT\n+\n");
  io::FastqStreamReader reader(is);
  seq::Read r;
  EXPECT_TRUE(reader.next(r));
  EXPECT_THROW(reader.next(r), std::runtime_error);
}

TEST(FastqStreamReader, MalformedRecordsThrow) {
  seq::Read r;
  {
    std::istringstream is("ACGT\n+\nIIII\n");  // header missing '@'
    io::FastqStreamReader reader(is);
    EXPECT_THROW(reader.next(r), std::runtime_error);
  }
  {
    std::istringstream is("@a\nACGT\nIIII\n@b\n");  // '+' missing
    io::FastqStreamReader reader(is);
    EXPECT_THROW(reader.next(r), std::runtime_error);
  }
  {
    std::istringstream is("@a\nACGT\n+\nIII\n");  // length mismatch
    io::FastqStreamReader reader(is);
    EXPECT_THROW(reader.next(r), std::runtime_error);
  }
}

TEST(FastqStreamReader, MissingFileThrows) {
  EXPECT_THROW(io::FastqStreamReader("/nonexistent/path.fastq"),
               std::runtime_error);
}

// The central pipeline guarantee: file-to-file streaming correction is
// byte-identical to in-memory build + correct_all, for every method.
TEST(CorrectionPipeline, ByteIdenticalToCorrectAllForEveryMethod) {
  const auto run = make_run(11);
  const std::string input = to_fastq(run.reads);

  for (const auto& m : core::registered_methods()) {
    core::CorrectorConfig config;
    config.genome_length = 20000;
    if (m.name == "redeem" || m.name == "hybrid") config.error_rate = 0.01;

    // Reference: the in-memory path.
    auto reference = core::make_corrector(m.name, config);
    reference->build(run.reads);
    core::CorrectionReport ref_report;
    const auto ref_out = reference->correct_all(run.reads, ref_report);
    std::ostringstream ref_fastq;
    io::write_fastq(ref_fastq, std::span<const seq::Read>(ref_out));

    // Candidate: the streaming pipeline over the same bytes, with a batch
    // size that does not divide the input evenly.
    core::PipelineOptions options;
    options.batch_size = 257;
    core::CorrectionPipeline pipeline(core::make_corrector(m.name, config),
                                      options);
    std::ostringstream out;
    const auto result = pipeline.run(factory_for(input), out);

    EXPECT_EQ(out.str(), ref_fastq.str()) << m.name;
    EXPECT_EQ(result.report.reads, run.reads.size()) << m.name;
    EXPECT_EQ(result.report.reads_changed, ref_report.reads_changed) << m.name;
    EXPECT_EQ(result.report.bases_changed, ref_report.bases_changed) << m.name;
    EXPECT_EQ(result.streamed, m.streaming) << m.name;
    EXPECT_EQ(result.input.reads, run.reads.size()) << m.name;
  }
}

// O(batch) read buffering on the serial streamed path, via the
// pipeline's own accounting plus the util/memory.hpp RSS hook.
TEST(CorrectionPipeline, StreamedPathBuffersOnlyOneBatch) {
  const auto run = make_run(13);
  const std::string input = to_fastq(run.reads);
  ASSERT_GT(run.reads.size(), 256u);

  core::CorrectorConfig config;
  core::PipelineOptions options;
  options.batch_size = 256;
  options.io_overlap = false;
  core::CorrectionPipeline pipeline(core::make_corrector("sap", config),
                                    options);
  std::ostringstream out;
  const auto result = pipeline.run(factory_for(input), out);

  EXPECT_TRUE(result.streamed);
  EXPECT_FALSE(result.overlapped);
  EXPECT_LE(result.peak_buffered_reads, options.batch_size);
  EXPECT_GT(result.peak_rss_bytes, 0u);
  EXPECT_EQ(result.batches,
            (run.reads.size() + options.batch_size - 1) / options.batch_size);
}

// The overlapped streamed path holds more batches in flight, but stays
// under the executor's documented cap: batch_size * (queue_depth +
// 2*workers + 1) reads resident, at every depth.
TEST(CorrectionPipeline, OverlappedPathBuffersStayBounded) {
  const auto run = make_run(13);
  const std::string input = to_fastq(run.reads);
  ASSERT_GT(run.reads.size(), 256u);

  for (const std::size_t depth : {1ul, 2ul, 8ul}) {
    core::CorrectorConfig config;
    core::PipelineOptions options;
    options.batch_size = 64;
    options.threads = 2;
    options.queue_depth = depth;
    core::CorrectionPipeline pipeline(core::make_corrector("sap", config),
                                      options);
    std::ostringstream out;
    const auto result = pipeline.run(factory_for(input), out);

    EXPECT_TRUE(result.streamed) << depth;
    EXPECT_TRUE(result.overlapped) << depth;
    const std::size_t cap =
        options.batch_size * (depth + 2 * options.threads + 1);
    EXPECT_LE(result.peak_buffered_reads, cap) << depth;
    EXPECT_EQ(result.batches,
              (run.reads.size() + options.batch_size - 1) /
                  options.batch_size)
        << depth;
    EXPECT_EQ(result.pass2_overlap.items, result.batches) << depth;
    EXPECT_LE(result.pass2_overlap.queue_peak, depth) << depth;
    EXPECT_GT(result.report.extra("io_overlap"), 0u) << depth;
    EXPECT_EQ(result.report.extra("queue_depth"), depth) << depth;
  }
}

// The tentpole identity guarantee of the overlapped executor: output is
// byte-identical to --io-overlap=off at every thread count x queue
// depth, for both a spectrum-streamed and a buffered-input method.
TEST(CorrectionPipeline, OverlappedOutputByteIdenticalAcrossThreadsAndDepths) {
  const auto run = make_run(29);
  const std::string input = to_fastq(run.reads);

  for (const char* method : {"sap", "reptile"}) {
    core::CorrectorConfig config;
    config.genome_length = 20000;

    // Reference: the serial stop-and-go loops, single-threaded.
    core::PipelineOptions ref_options;
    ref_options.batch_size = 113;
    ref_options.threads = 1;
    ref_options.io_overlap = false;
    core::CorrectionPipeline reference(core::make_corrector(method, config),
                                       ref_options);
    std::ostringstream ref_out;
    reference.run(factory_for(input), ref_out);
    ASSERT_FALSE(ref_out.str().empty()) << method;

    for (const std::size_t threads : {1ul, 2ul, 4ul, 8ul}) {
      for (const std::size_t depth : {1ul, 2ul, 8ul}) {
        core::PipelineOptions options;
        options.batch_size = 113;
        options.threads = threads;
        options.queue_depth = depth;
        core::CorrectionPipeline pipeline(
            core::make_corrector(method, config), options);
        std::ostringstream out;
        const auto result = pipeline.run(factory_for(input), out);
        EXPECT_TRUE(result.overlapped)
            << method << " t=" << threads << " d=" << depth;
        EXPECT_EQ(out.str(), ref_out.str())
            << method << " t=" << threads << " d=" << depth;
      }
    }
  }
}

TEST(CorrectionPipeline, BufferedPathHoldsWholeInput) {
  const auto run = make_run(17, 5.0);
  const std::string input = to_fastq(run.reads);

  core::PipelineOptions options;
  options.batch_size = 64;
  core::CorrectionPipeline pipeline(core::make_corrector("reptile", {}),
                                    options);
  std::ostringstream out;
  const auto result = pipeline.run(factory_for(input), out);

  EXPECT_FALSE(result.streamed);
  EXPECT_EQ(result.peak_buffered_reads, run.reads.size());
  EXPECT_EQ(result.report.reads, run.reads.size());
}

TEST(CorrectionPipeline, OwnThreadCountMatchesDefaultPoolOutput) {
  const auto run = make_run(19, 10.0);
  const std::string input = to_fastq(run.reads);

  std::string outputs[2];
  for (int i = 0; i < 2; ++i) {
    core::PipelineOptions options;
    options.batch_size = 100;
    options.threads = i == 0 ? 0 : 3;
    core::CorrectionPipeline pipeline(core::make_corrector("hitec", {}),
                                      options);
    std::ostringstream out;
    pipeline.run(factory_for(input), out);
    outputs[i] = out.str();
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_FALSE(outputs[0].empty());
}

// The tile-decision memo must never change what the pipeline writes:
// cached and uncached runs are byte-identical at every thread count,
// and the cached run surfaces the standardized perf extras.
TEST(CorrectionPipeline, TileCacheOutputByteIdenticalAcrossThreadCounts) {
  const auto run = make_run(23);
  const std::string input = to_fastq(run.reads);

  auto run_pipeline = [&](std::size_t tile_cache_mb, std::size_t threads,
                          core::CorrectionReport& report) {
    core::CorrectorConfig config;
    config.genome_length = 20000;
    config.tile_cache_mb = tile_cache_mb;
    core::PipelineOptions options;
    options.batch_size = 301;
    options.threads = threads;
    core::CorrectionPipeline pipeline(core::make_corrector("reptile", config),
                                      options);
    std::ostringstream out;
    report = pipeline.run(factory_for(input), out).report;
    return out.str();
  };

  core::CorrectionReport uncached_report;
  const std::string uncached = run_pipeline(0, 1, uncached_report);
  ASSERT_FALSE(uncached.empty());
  EXPECT_EQ(uncached_report.extra("tile_cache_hits"), 0u);
  EXPECT_EQ(uncached_report.extra("tile_cache_misses"), 0u);

  for (const std::size_t threads : {0ul, 1ul, 2ul, 4ul}) {
    core::CorrectionReport report;
    EXPECT_EQ(run_pipeline(32, threads, report), uncached) << threads;
    EXPECT_GT(report.extra("tile_cache_hits") +
                  report.extra("tile_cache_misses"),
              0u)
        << threads;
    EXPECT_GT(report.extra("pass2_reads_per_sec"), 0u) << threads;
    EXPECT_EQ(report.reads_changed, uncached_report.reads_changed) << threads;
    EXPECT_EQ(report.bases_changed, uncached_report.bases_changed) << threads;
  }
}

TEST(CorrectionPipeline, NullCorrectorThrows) {
  EXPECT_THROW(core::CorrectionPipeline(nullptr), std::invalid_argument);
}

TEST(CorrectionPipeline, EmptyInputProducesEmptyOutput) {
  core::CorrectionPipeline pipeline(core::make_corrector("sap", {}));
  std::ostringstream out;
  const auto result = pipeline.run(factory_for(""), out);
  EXPECT_EQ(out.str(), "");
  EXPECT_EQ(result.report.reads, 0u);
  EXPECT_EQ(result.batches, 0u);
}

TEST(Registry, CustomRegistrationShadowsAndLists) {
  // A test double registered under a fresh name shows up in the list and
  // is constructible through make_corrector.
  class Passthrough final : public core::Corrector {
   public:
    std::string_view method() const noexcept override { return "identity"; }
    void build(const seq::ReadSet&) override { mark_ready(); }
    void correct_batch(std::span<const seq::Read> in,
                       std::vector<seq::Read>& out,
                       core::CorrectionReport& report,
                       core::BatchScratch*) const override {
      require_ready();
      for (const auto& r : in) {
        out.push_back(r);
        core::tally_read(r, r, report);
      }
    }
  };
  core::register_corrector({"identity", "test passthrough", false},
                           [](const core::CorrectorConfig&) {
                             return std::make_unique<Passthrough>();
                           });
  const auto corrector = core::make_corrector("identity");
  seq::ReadSet reads;
  reads.reads.push_back({"r1", "ACGT", {30, 30, 30, 30}});
  corrector->build(reads);
  core::CorrectionReport report;
  const auto out = corrector->correct_all(reads, report);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].bases, "ACGT");
  EXPECT_EQ(report.reads, 1u);
  EXPECT_EQ(report.reads_changed, 0u);
}

}  // namespace
