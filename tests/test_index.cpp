// Tests for ngs::index — the persistent mmap-able spectrum index:
// round-trip fidelity across k widths and degenerate spectra, loader
// hardening against corrupt/truncated files (distinct IndexError kinds,
// never UB on a short file), and the pipeline-level guarantee that a
// --load-index run produces byte-identical output to a fresh pass-1
// build over the same reads.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/registry.hpp"
#include "index/format.hpp"
#include "index/spectrum_index.hpp"
#include "io/fastx.hpp"
#include "kspec/kspectrum.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;
using Kind = index::IndexError::Kind;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "ngs_index_test_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os.good()) << path;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A deterministic random spectrum: `n` strictly ascending codes within
/// the 2k-bit space with positive counts.
kspec::KSpectrum random_spectrum(int k, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  const seq::KmerCode mask =
      k == 32 ? ~seq::KmerCode{0} : (seq::KmerCode{1} << (2 * k)) - 1;
  std::vector<seq::KmerCode> codes;
  std::vector<std::uint32_t> counts;
  seq::KmerCode next = 0;
  while (codes.size() < n) {
    next += 1 + rng.below(257);
    if (next > mask) break;
    codes.push_back(next);
    counts.push_back(1 + static_cast<std::uint32_t>(rng.below(100)));
  }
  return kspec::KSpectrum::from_sorted_counts(std::move(codes),
                                              std::move(counts), k);
}

index::IndexBuildInfo build_info_for(const kspec::KSpectrum& spectrum) {
  index::IndexBuildInfo build;
  build.k = spectrum.k();
  build.both_strands = true;
  build.input_reads = 100;
  build.input_bases = 3600;
  build.max_read_length = 36;
  return build;
}

void expect_same_spectrum(const kspec::KSpectrum& loaded,
                          const kspec::KSpectrum& built) {
  ASSERT_EQ(loaded.k(), built.k());
  ASSERT_EQ(loaded.size(), built.size());
  EXPECT_EQ(loaded.total_instances(), built.total_instances());
  EXPECT_EQ(loaded.prefix_index_bits(), built.prefix_index_bits());
  for (std::size_t i = 0; i < built.size(); ++i) {
    ASSERT_EQ(loaded.code_at(i), built.code_at(i)) << "code " << i;
    ASSERT_EQ(loaded.count_at(i), built.count_at(i)) << "count " << i;
  }
  const auto lb = loaded.bucket_starts();
  const auto bb = built.bucket_starts();
  ASSERT_EQ(lb.size(), bb.size());
  for (std::size_t i = 0; i < bb.size(); ++i) {
    ASSERT_EQ(lb[i], bb[i]) << "bucket " << i;
  }
}

Kind load_failure_kind(const std::string& path,
                       const index::LoadOptions& options = {}) {
  try {
    (void)index::SpectrumIndex::load(path, options);
  } catch (const index::IndexError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error message should name the file: " << e.what();
    return e.index_kind();
  }
  ADD_FAILURE() << "load of " << path << " unexpectedly succeeded";
  return Kind::kIo;
}

TEST(SpectrumIndex, RoundTripAcrossKWidths) {
  for (const int k : {8, 16, 24, 31}) {
    const auto built = random_spectrum(k, 5000, 1000 + k);
    ASSERT_GT(built.size(), 0u);
    const std::string path = temp_path("roundtrip_k" + std::to_string(k));
    const std::uint64_t checksum =
        index::write_spectrum_index(path, built, build_info_for(built));
    EXPECT_NE(checksum, 0u);

    const auto loaded = index::SpectrumIndex::load(path);
    EXPECT_EQ(loaded.info().checksum, checksum);
    EXPECT_EQ(loaded.info().build.k, k);
    EXPECT_TRUE(loaded.info().build.both_strands);
    EXPECT_EQ(loaded.info().build.input_reads, 100u);
    EXPECT_EQ(loaded.info().build.max_read_length, 36u);
    expect_same_spectrum(loaded.spectrum(), built);

    // Random hit/miss queries answer identically through the loaded view.
    util::Rng rng(7 * k);
    const seq::KmerCode mask =
        (seq::KmerCode{1} << (2 * k)) - 1;
    for (int q = 0; q < 2000; ++q) {
      const seq::KmerCode code = (q % 2 == 0)
                                     ? built.code_at(rng.below(built.size()))
                                     : (rng() & mask);
      ASSERT_EQ(loaded.spectrum().index_of(code), built.index_of(code));
      ASSERT_EQ(loaded.spectrum().count(code), built.count(code));
    }
    std::remove(path.c_str());
  }
}

TEST(SpectrumIndex, RoundTripEmptyAndSingleton) {
  const auto empty = kspec::KSpectrum::from_sorted_counts({}, {}, 12);
  const std::string empty_path = temp_path("empty");
  index::write_spectrum_index(empty_path, empty, build_info_for(empty));
  const auto loaded_empty = index::SpectrumIndex::load(empty_path);
  EXPECT_EQ(loaded_empty.spectrum().size(), 0u);
  EXPECT_EQ(loaded_empty.spectrum().total_instances(), 0u);
  EXPECT_FALSE(loaded_empty.spectrum().contains(0));
  std::remove(empty_path.c_str());

  const auto one = kspec::KSpectrum::from_sorted_counts({42}, {7}, 12);
  const std::string one_path = temp_path("singleton");
  index::write_spectrum_index(one_path, one, build_info_for(one));
  const auto loaded_one = index::SpectrumIndex::load(one_path);
  expect_same_spectrum(loaded_one.spectrum(), one);
  EXPECT_EQ(loaded_one.spectrum().count(42), 7u);
  EXPECT_EQ(loaded_one.spectrum().count(41), 0u);
  std::remove(one_path.c_str());
}

TEST(SpectrumIndex, OwnedBufferFallbackMatchesMmap) {
  const auto built = random_spectrum(16, 3000, 99);
  const std::string path = temp_path("owned");
  index::write_spectrum_index(path, built, build_info_for(built));

  index::LoadOptions owned;
  owned.use_mmap = false;
  const auto via_read = index::SpectrumIndex::load(path, owned);
  EXPECT_FALSE(via_read.info().mapped);
  expect_same_spectrum(via_read.spectrum(), built);

  const auto via_mmap = index::SpectrumIndex::load(path);
  expect_same_spectrum(via_mmap.spectrum(), via_read.spectrum());
  std::remove(path.c_str());
}

TEST(SpectrumIndex, SharedSpectrumOutlivesIndexObject) {
  const auto built = random_spectrum(16, 2000, 5);
  const std::string path = temp_path("keepalive");
  index::write_spectrum_index(path, built, build_info_for(built));

  kspec::KSpectrum view;
  {
    const auto loaded = index::SpectrumIndex::load(path);
    view = loaded.share_spectrum();
    EXPECT_TRUE(view.external());
  }  // mapping must stay alive through the keepalive handle
  expect_same_spectrum(view, built);
  std::remove(path.c_str());
}

TEST(SpectrumIndex, RejectsMissingAndTruncatedFiles) {
  EXPECT_EQ(load_failure_kind(temp_path("does_not_exist")), Kind::kIo);

  const auto built = random_spectrum(16, 1000, 3);
  const std::string path = temp_path("truncated");
  index::write_spectrum_index(path, built, build_info_for(built));
  const std::string valid = slurp(path);

  // Shorter than the fixed header: rejected before any field is read.
  spew(path, valid.substr(0, 64));
  EXPECT_EQ(load_failure_kind(path), Kind::kTruncated);
  // Metadata intact but payload cut short: the recorded file_bytes no
  // longer matches reality.
  spew(path, valid.substr(0, valid.size() - 128));
  EXPECT_EQ(load_failure_kind(path), Kind::kTruncated);
  // Empty file.
  spew(path, "");
  EXPECT_EQ(load_failure_kind(path), Kind::kTruncated);
  std::remove(path.c_str());
}

TEST(SpectrumIndex, RejectsBadMagicVersionSkewAndHeaderCorruption) {
  const auto built = random_spectrum(16, 1000, 4);
  const std::string path = temp_path("corrupt_header");
  index::write_spectrum_index(path, built, build_info_for(built));
  const std::string valid = slurp(path);

  std::string bad = valid;
  bad[0] ^= 0x40;  // magic
  spew(path, bad);
  EXPECT_EQ(load_failure_kind(path), Kind::kBadMagic);

  bad = valid;
  bad[8] = 0x7f;  // format_version (first field after the 8-byte magic)
  spew(path, bad);
  EXPECT_EQ(load_failure_kind(path), Kind::kVersionSkew);

  bad = valid;
  bad[100] ^= 0x01;  // inside the header's reserved tail
  spew(path, bad);
  EXPECT_EQ(load_failure_kind(path), Kind::kChecksum);

  spew(path, valid);
  EXPECT_NO_THROW((void)index::SpectrumIndex::load(path));
  std::remove(path.c_str());
}

TEST(SpectrumIndex, PayloadBitFlipCaughtByVerify) {
  const auto built = random_spectrum(16, 1000, 6);
  const std::string path = temp_path("corrupt_payload");
  index::write_spectrum_index(path, built, build_info_for(built));
  const std::string valid = slurp(path);
  const auto info = index::SpectrumIndex::read_info(path);
  ASSERT_FALSE(info.sections.empty());

  index::LoadOptions verify;
  verify.verify_checksums = true;
  verify.validate_payload = true;

  // A flipped bit inside each payload section escapes the structural
  // (header-only) checks but must never survive a verifying load.
  for (const auto& section : info.sections) {
    std::string bad = valid;
    bad[section.offset + section.bytes / 2] ^= 0x10;
    spew(path, bad);
    EXPECT_NO_THROW((void)index::SpectrumIndex::read_info(path));
    EXPECT_EQ(load_failure_kind(path, verify), Kind::kChecksum);
  }

  // Every bit flip across the header + section table is also caught.
  const std::size_t meta_bytes =
      sizeof(index::IndexHeader) +
      info.sections.size() * sizeof(index::SectionEntry);
  for (std::size_t off = 0; off < meta_bytes; ++off) {
    std::string bad = valid;
    bad[off] ^= 0x04;
    spew(path, bad);
    EXPECT_THROW((void)index::SpectrumIndex::load(path, verify),
                 index::IndexError)
        << "metadata flip at byte " << off << " was not detected";
  }

  spew(path, valid);
  EXPECT_NO_THROW((void)index::SpectrumIndex::load(path, verify));
  std::remove(path.c_str());
}

TEST(KSpectrum, ValidateSortedCountsFindsEachViolation) {
  using kspec::KSpectrum;
  EXPECT_FALSE(KSpectrum::validate_sorted_counts({}, {}, 8).has_value());
  std::vector<seq::KmerCode> codes{3, 9, 20};
  std::vector<std::uint32_t> counts{1, 2, 3};
  EXPECT_FALSE(KSpectrum::validate_sorted_counts(codes, counts, 8).has_value());

  const std::vector<std::uint32_t> short_counts{1, 2};
  EXPECT_TRUE(
      KSpectrum::validate_sorted_counts(codes, short_counts, 8).has_value());

  const std::vector<seq::KmerCode> unsorted{9, 3, 20};
  EXPECT_TRUE(
      KSpectrum::validate_sorted_counts(unsorted, counts, 8).has_value());

  const std::vector<seq::KmerCode> duplicated{3, 3, 20};
  EXPECT_TRUE(
      KSpectrum::validate_sorted_counts(duplicated, counts, 8).has_value());

  const std::vector<std::uint32_t> zero_count{1, 0, 3};
  EXPECT_TRUE(
      KSpectrum::validate_sorted_counts(codes, zero_count, 8).has_value());

  // Code wider than 2k bits (k=2 -> 4-bit space, 20 needs 5).
  EXPECT_TRUE(
      KSpectrum::validate_sorted_counts(codes, counts, 2).has_value());
}

// --- Pipeline integration ---------------------------------------------

sim::SimulatedReads make_run(std::uint64_t seed, double coverage = 25.0) {
  util::Rng rng(seed);
  sim::GenomeSpec gspec;
  gspec.length = 20000;
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = coverage;
  return sim::simulate_reads(genome.sequence, model, cfg, rng);
}

std::string to_fastq(const seq::ReadSet& reads) {
  std::ostringstream os;
  io::write_fastq(os, reads);
  return os.str();
}

core::CorrectionPipeline::StreamFactory factory_for(std::string fastq) {
  return [fastq = std::move(fastq)] {
    return std::make_unique<std::istringstream>(fastq);
  };
}

std::unique_ptr<core::Corrector> make_method(const std::string& name) {
  core::CorrectorConfig config;
  config.genome_length = 20000;
  config.error_rate = 0.01;
  return core::make_corrector(name, config);
}

TEST(CorrectionPipeline, LoadIndexReproducesFreshRunByteForByte) {
  const auto run = make_run(20260806);
  const std::string fastq = to_fastq(run.reads);
  const std::string index_path = temp_path("pipeline_index");

  // redeem sizes its matrices from the InputSummary, so identical output
  // additionally proves the summary persisted in the index header.
  for (const std::string method : {"sap", "redeem"}) {
    core::PipelineOptions plain_opts;
    std::ostringstream plain_out;
    core::CorrectionPipeline plain(make_method(method), plain_opts);
    const auto plain_result = plain.run(factory_for(fastq), plain_out);
    EXPECT_TRUE(plain_result.streamed);
    EXPECT_FALSE(plain_result.pass1_skipped);
    EXPECT_EQ(plain_result.report.extra("index_saved"), 0u);

    core::PipelineOptions save_opts;
    save_opts.save_index_path = index_path;
    std::ostringstream save_out;
    core::CorrectionPipeline saver(make_method(method), save_opts);
    const auto save_result = saver.run(factory_for(fastq), save_out);
    EXPECT_FALSE(save_result.pass1_skipped);
    EXPECT_EQ(save_result.report.extra("index_saved"), 1u);
    EXPECT_EQ(save_result.report.note_or("index_path"), index_path);
    EXPECT_FALSE(save_result.report.note_or("index_checksum").empty());

    core::PipelineOptions load_opts;
    load_opts.load_index_path = index_path;
    std::ostringstream load_out;
    core::CorrectionPipeline loader(make_method(method), load_opts);
    const auto load_result = loader.run(factory_for(fastq), load_out);
    EXPECT_TRUE(load_result.pass1_skipped);
    EXPECT_EQ(load_result.report.extra("pass1_skipped"), 1u);
    EXPECT_EQ(load_result.report.note_or("index_path"), index_path);
    EXPECT_EQ(load_result.report.note_or("index_checksum"),
              save_result.report.note_or("index_checksum"));
    // The loaded run never saw the reads in pass 1; the summary must
    // come from the index header and match the fresh run exactly.
    EXPECT_EQ(load_result.input.reads, plain_result.input.reads);
    EXPECT_EQ(load_result.input.bases, plain_result.input.bases);
    EXPECT_EQ(load_result.input.max_read_length,
              plain_result.input.max_read_length);

    EXPECT_EQ(save_out.str(), plain_out.str()) << method;
    EXPECT_EQ(load_out.str(), plain_out.str()) << method;
    std::remove(index_path.c_str());
  }
}

TEST(CorrectionPipeline, LoadIndexRejectsParameterMismatch) {
  const auto run = make_run(77, 10.0);
  const std::string fastq = to_fastq(run.reads);

  auto sap = make_method("sap");
  const int needed_k = sap->spectrum_k();
  ASSERT_GT(needed_k, 0);

  // An index built at a different k: cross-check must fail fast.
  const auto wrong = kspec::KSpectrum::build(run.reads, needed_k + 1, true);
  index::IndexBuildInfo build;
  build.k = needed_k + 1;
  build.both_strands = true;
  const std::string path = temp_path("mismatch_k");
  index::write_spectrum_index(path, wrong, build);

  core::PipelineOptions opts;
  opts.load_index_path = path;
  core::CorrectionPipeline pipeline(std::move(sap), opts);
  std::ostringstream out;
  EXPECT_THROW(pipeline.run(factory_for(fastq), out), std::invalid_argument);

  // Same k, opposite strand convention.
  const auto same_k = kspec::KSpectrum::build(run.reads, needed_k, true);
  build.k = needed_k;
  build.both_strands = false;
  index::write_spectrum_index(path, same_k, build);
  core::CorrectionPipeline pipeline2(make_method("sap"), opts);
  EXPECT_THROW(pipeline2.run(factory_for(fastq), out), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CorrectionPipeline, BufferedMethodsRejectIndexFlags) {
  const auto run = make_run(55, 10.0);
  const std::string fastq = to_fastq(run.reads);
  const std::string path = temp_path("buffered_reject");

  core::PipelineOptions load_opts;
  load_opts.load_index_path = path;
  core::CorrectionPipeline loading(make_method("reptile"), load_opts);
  std::ostringstream out;
  EXPECT_THROW(loading.run(factory_for(fastq), out), std::invalid_argument);

  core::PipelineOptions save_opts;
  save_opts.save_index_path = path;
  core::CorrectionPipeline saving(make_method("reptile"), save_opts);
  EXPECT_THROW(saving.run(factory_for(fastq), out), std::invalid_argument);
}

}  // namespace
