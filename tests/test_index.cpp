// Tests for ngs::index — the persistent mmap-able spectrum index:
// round-trip fidelity across k widths and degenerate spectra, loader
// hardening against corrupt/truncated files (distinct IndexError kinds,
// never UB on a short file), and the pipeline-level guarantee that a
// --load-index run produces byte-identical output to a fresh pass-1
// build over the same reads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/registry.hpp"
#include "index/format.hpp"
#include "index/spectrum_index.hpp"
#include "io/fastx.hpp"
#include "kspec/kspectrum.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;
using Kind = index::IndexError::Kind;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "ngs_index_test_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os.good()) << path;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A deterministic random spectrum: `n` strictly ascending codes within
/// the 2k-bit space with positive counts.
kspec::KSpectrum random_spectrum(int k, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  const seq::KmerCode mask =
      k == 32 ? ~seq::KmerCode{0} : (seq::KmerCode{1} << (2 * k)) - 1;
  std::vector<seq::KmerCode> codes;
  std::vector<std::uint32_t> counts;
  seq::KmerCode next = 0;
  while (codes.size() < n) {
    next += 1 + rng.below(257);
    if (next > mask) break;
    codes.push_back(next);
    counts.push_back(1 + static_cast<std::uint32_t>(rng.below(100)));
  }
  return kspec::KSpectrum::from_sorted_counts(std::move(codes),
                                              std::move(counts), k);
}

index::IndexBuildInfo build_info_for(const kspec::KSpectrum& spectrum) {
  index::IndexBuildInfo build;
  build.k = spectrum.k();
  build.both_strands = true;
  build.input_reads = 100;
  build.input_bases = 3600;
  build.max_read_length = 36;
  return build;
}

void expect_same_spectrum(const kspec::KSpectrum& loaded,
                          const kspec::KSpectrum& built) {
  ASSERT_EQ(loaded.k(), built.k());
  ASSERT_EQ(loaded.size(), built.size());
  EXPECT_EQ(loaded.total_instances(), built.total_instances());
  EXPECT_EQ(loaded.prefix_index_bits(), built.prefix_index_bits());
  for (std::size_t i = 0; i < built.size(); ++i) {
    ASSERT_EQ(loaded.code_at(i), built.code_at(i)) << "code " << i;
    ASSERT_EQ(loaded.count_at(i), built.count_at(i)) << "count " << i;
  }
  const auto lb = loaded.bucket_starts();
  const auto bb = built.bucket_starts();
  ASSERT_EQ(lb.size(), bb.size());
  for (std::size_t i = 0; i < bb.size(); ++i) {
    ASSERT_EQ(lb[i], bb[i]) << "bucket " << i;
  }
}

Kind load_failure_kind(const std::string& path,
                       const index::LoadOptions& options = {}) {
  try {
    (void)index::SpectrumIndex::load(path, options);
  } catch (const index::IndexError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error message should name the file: " << e.what();
    return e.index_kind();
  }
  ADD_FAILURE() << "load of " << path << " unexpectedly succeeded";
  return Kind::kIo;
}

TEST(SpectrumIndex, RoundTripAcrossKWidths) {
  for (const int k : {8, 16, 24, 31}) {
    const auto built = random_spectrum(k, 5000, 1000 + k);
    ASSERT_GT(built.size(), 0u);
    const std::string path = temp_path("roundtrip_k" + std::to_string(k));
    const std::uint64_t checksum =
        index::write_spectrum_index(path, built, build_info_for(built));
    EXPECT_NE(checksum, 0u);

    const auto loaded = index::SpectrumIndex::load(path);
    EXPECT_EQ(loaded.info().checksum, checksum);
    EXPECT_EQ(loaded.info().build.k, k);
    EXPECT_TRUE(loaded.info().build.both_strands);
    EXPECT_EQ(loaded.info().build.input_reads, 100u);
    EXPECT_EQ(loaded.info().build.max_read_length, 36u);
    expect_same_spectrum(loaded.spectrum(), built);

    // Random hit/miss queries answer identically through the loaded view.
    util::Rng rng(7 * k);
    const seq::KmerCode mask =
        (seq::KmerCode{1} << (2 * k)) - 1;
    for (int q = 0; q < 2000; ++q) {
      const seq::KmerCode code = (q % 2 == 0)
                                     ? built.code_at(rng.below(built.size()))
                                     : (rng() & mask);
      ASSERT_EQ(loaded.spectrum().index_of(code), built.index_of(code));
      ASSERT_EQ(loaded.spectrum().count(code), built.count(code));
    }
    std::remove(path.c_str());
  }
}

TEST(SpectrumIndex, RoundTripEmptyAndSingleton) {
  const auto empty = kspec::KSpectrum::from_sorted_counts({}, {}, 12);
  const std::string empty_path = temp_path("empty");
  index::write_spectrum_index(empty_path, empty, build_info_for(empty));
  const auto loaded_empty = index::SpectrumIndex::load(empty_path);
  EXPECT_EQ(loaded_empty.spectrum().size(), 0u);
  EXPECT_EQ(loaded_empty.spectrum().total_instances(), 0u);
  EXPECT_FALSE(loaded_empty.spectrum().contains(0));
  std::remove(empty_path.c_str());

  const auto one = kspec::KSpectrum::from_sorted_counts({42}, {7}, 12);
  const std::string one_path = temp_path("singleton");
  index::write_spectrum_index(one_path, one, build_info_for(one));
  const auto loaded_one = index::SpectrumIndex::load(one_path);
  expect_same_spectrum(loaded_one.spectrum(), one);
  EXPECT_EQ(loaded_one.spectrum().count(42), 7u);
  EXPECT_EQ(loaded_one.spectrum().count(41), 0u);
  std::remove(one_path.c_str());
}

TEST(SpectrumIndex, OwnedBufferFallbackMatchesMmap) {
  const auto built = random_spectrum(16, 3000, 99);
  const std::string path = temp_path("owned");
  index::write_spectrum_index(path, built, build_info_for(built));

  index::LoadOptions owned;
  owned.use_mmap = false;
  const auto via_read = index::SpectrumIndex::load(path, owned);
  EXPECT_FALSE(via_read.info().mapped);
  expect_same_spectrum(via_read.spectrum(), built);

  const auto via_mmap = index::SpectrumIndex::load(path);
  expect_same_spectrum(via_mmap.spectrum(), via_read.spectrum());
  std::remove(path.c_str());
}

TEST(SpectrumIndex, SharedSpectrumOutlivesIndexObject) {
  const auto built = random_spectrum(16, 2000, 5);
  const std::string path = temp_path("keepalive");
  index::write_spectrum_index(path, built, build_info_for(built));

  kspec::KSpectrum view;
  {
    const auto loaded = index::SpectrumIndex::load(path);
    view = loaded.share_spectrum();
    EXPECT_TRUE(view.external());
  }  // mapping must stay alive through the keepalive handle
  expect_same_spectrum(view, built);
  std::remove(path.c_str());
}

TEST(SpectrumIndex, RejectsMissingAndTruncatedFiles) {
  EXPECT_EQ(load_failure_kind(temp_path("does_not_exist")), Kind::kIo);

  const auto built = random_spectrum(16, 1000, 3);
  const std::string path = temp_path("truncated");
  index::write_spectrum_index(path, built, build_info_for(built));
  const std::string valid = slurp(path);

  // Shorter than the fixed header: rejected before any field is read.
  spew(path, valid.substr(0, 64));
  EXPECT_EQ(load_failure_kind(path), Kind::kTruncated);
  // Metadata intact but payload cut short: the recorded file_bytes no
  // longer matches reality.
  spew(path, valid.substr(0, valid.size() - 128));
  EXPECT_EQ(load_failure_kind(path), Kind::kTruncated);
  // Empty file.
  spew(path, "");
  EXPECT_EQ(load_failure_kind(path), Kind::kTruncated);
  std::remove(path.c_str());
}

TEST(SpectrumIndex, RejectsBadMagicVersionSkewAndHeaderCorruption) {
  const auto built = random_spectrum(16, 1000, 4);
  const std::string path = temp_path("corrupt_header");
  index::write_spectrum_index(path, built, build_info_for(built));
  const std::string valid = slurp(path);

  std::string bad = valid;
  bad[0] ^= 0x40;  // magic
  spew(path, bad);
  EXPECT_EQ(load_failure_kind(path), Kind::kBadMagic);

  bad = valid;
  bad[8] = 0x7f;  // format_version (first field after the 8-byte magic)
  spew(path, bad);
  EXPECT_EQ(load_failure_kind(path), Kind::kVersionSkew);

  bad = valid;
  bad[100] ^= 0x01;  // inside the header's reserved tail
  spew(path, bad);
  EXPECT_EQ(load_failure_kind(path), Kind::kChecksum);

  spew(path, valid);
  EXPECT_NO_THROW((void)index::SpectrumIndex::load(path));
  std::remove(path.c_str());
}

TEST(SpectrumIndex, PayloadBitFlipCaughtByVerify) {
  const auto built = random_spectrum(16, 1000, 6);
  const std::string path = temp_path("corrupt_payload");
  index::write_spectrum_index(path, built, build_info_for(built));
  const std::string valid = slurp(path);
  const auto info = index::SpectrumIndex::read_info(path);
  ASSERT_FALSE(info.sections.empty());

  index::LoadOptions verify;
  verify.verify_checksums = true;
  verify.validate_payload = true;

  // A flipped bit inside each payload section escapes the structural
  // (header-only) checks but must never survive a verifying load.
  for (const auto& section : info.sections) {
    std::string bad = valid;
    bad[section.offset + section.bytes / 2] ^= 0x10;
    spew(path, bad);
    EXPECT_NO_THROW((void)index::SpectrumIndex::read_info(path));
    EXPECT_EQ(load_failure_kind(path, verify), Kind::kChecksum);
  }

  // Every bit flip across the header + section table is also caught.
  const std::size_t meta_bytes =
      sizeof(index::IndexHeader) +
      info.sections.size() * sizeof(index::SectionEntry);
  for (std::size_t off = 0; off < meta_bytes; ++off) {
    std::string bad = valid;
    bad[off] ^= 0x04;
    spew(path, bad);
    EXPECT_THROW((void)index::SpectrumIndex::load(path, verify),
                 index::IndexError)
        << "metadata flip at byte " << off << " was not detected";
  }

  spew(path, valid);
  EXPECT_NO_THROW((void)index::SpectrumIndex::load(path, verify));
  std::remove(path.c_str());
}

// --- Sharded (version-2) format ---------------------------------------

/// A deterministic spectrum whose codes spread across the whole 2k-bit
/// space (random_spectrum's small steps would land every code in prefix
/// shard 0).
kspec::KSpectrum spread_spectrum(int k, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  const seq::KmerCode mask = (seq::KmerCode{1} << (2 * k)) - 1;
  const seq::KmerCode step = mask / n;
  std::vector<seq::KmerCode> codes;
  std::vector<std::uint32_t> counts;
  seq::KmerCode next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    next += 1 + rng.below(2 * step);
    if (next > mask) break;
    codes.push_back(next);
    counts.push_back(1 + static_cast<std::uint32_t>(rng.below(50)));
  }
  return kspec::KSpectrum::from_sorted_counts(std::move(codes),
                                              std::move(counts), k);
}

/// Splits a spectrum by top `shard_bits` prefix and writes it through
/// the streaming sharded writer. Returns the file checksum.
std::uint64_t write_sharded(const std::string& path,
                            const kspec::KSpectrum& spectrum,
                            int shard_bits) {
  const int shift = 2 * spectrum.k() - shard_bits;
  const auto codes = spectrum.codes();
  const auto counts = spectrum.counts();
  struct Span {
    std::uint32_t prefix;
    std::size_t begin, end;
  };
  std::vector<Span> spans;
  for (std::size_t i = 0; i < codes.size();) {
    const auto p = static_cast<std::uint32_t>(codes[i] >> shift);
    std::size_t j = i;
    while (j < codes.size() &&
           static_cast<std::uint32_t>(codes[j] >> shift) == p) {
      ++j;
    }
    spans.push_back({p, i, j});
    i = j;
  }
  index::ShardedIndexWriter writer(path, build_info_for(spectrum),
                                   shard_bits, spans.size());
  for (const auto& s : spans) {
    writer.append_shard(
        s.prefix,
        std::vector<seq::KmerCode>(codes.begin() + s.begin,
                                   codes.begin() + s.end),
        std::vector<std::uint32_t>(counts.begin() + s.begin,
                                   counts.begin() + s.end));
  }
  return writer.finish();
}

TEST(ShardedIndex, RoundTripMatchesMonolith) {
  const int k = 16;
  const auto built = spread_spectrum(k, 20000, 42);
  ASSERT_GT(built.size(), 10000u);
  const std::string path = temp_path("sharded_roundtrip");
  const std::uint64_t checksum = write_sharded(path, built, 3);
  EXPECT_NE(checksum, 0u);

  const auto info = index::SpectrumIndex::read_info(path);
  EXPECT_EQ(info.format_version, index::kFormatVersionSharded);
  EXPECT_EQ(info.shard_bits, 3u);
  EXPECT_GE(info.shard_count, 2u);
  ASSERT_EQ(info.shards.size(), info.shard_count);
  std::uint64_t distinct = 0, instances = 0;
  for (const auto& s : info.shards) {
    distinct += s.distinct;
    instances += s.total_instances;
  }
  EXPECT_EQ(distinct, built.size());
  EXPECT_EQ(instances, built.total_instances());

  for (const bool use_mmap : {true, false}) {
    index::LoadOptions options;
    options.use_mmap = use_mmap;
    options.verify_checksums = true;
    options.validate_payload = true;
    const auto loaded = index::SpectrumIndex::load(path, options);
    const auto& spec = loaded.spectrum();
    EXPECT_TRUE(spec.sharded());
    EXPECT_EQ(loaded.info().checksum, checksum);
    ASSERT_EQ(spec.size(), built.size()) << "mmap=" << use_mmap;
    EXPECT_EQ(spec.total_instances(), built.total_instances());
    for (std::size_t i = 0; i < built.size(); i += 37) {
      ASSERT_EQ(spec.code_at(i), built.code_at(i)) << i;
      ASSERT_EQ(spec.count_at(i), built.count_at(i)) << i;
    }
    util::Rng rng(31);
    const seq::KmerCode mask = (seq::KmerCode{1} << (2 * k)) - 1;
    for (int q = 0; q < 2000; ++q) {
      const seq::KmerCode code =
          (q % 2 == 0) ? built.code_at(rng.below(built.size()))
                       : (rng() & mask);
      ASSERT_EQ(spec.index_of(code), built.index_of(code));
      ASSERT_EQ(spec.count(code), built.count(code));
    }
  }
  std::remove(path.c_str());
}

TEST(ShardedIndex, MonolithicFilesStayVersion1) {
  const auto built = random_spectrum(16, 2000, 8);
  const std::string a = temp_path("v1_a");
  const std::string b = temp_path("v1_b");
  index::write_spectrum_index(a, built, build_info_for(built));
  index::write_spectrum_index(b, built, build_info_for(built));
  const auto info = index::SpectrumIndex::read_info(a);
  EXPECT_EQ(info.format_version, index::kFormatVersion);
  EXPECT_EQ(info.shard_count, 0u);
  EXPECT_EQ(info.shard_bits, 0u);
  EXPECT_TRUE(info.shards.empty());
  EXPECT_EQ(slurp(a), slurp(b)) << "version-1 writes must stay deterministic";
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(ShardedIndex, RejectsTruncationAndCorruption) {
  const auto built = spread_spectrum(14, 6000, 77);
  const std::string path = temp_path("sharded_corrupt");
  write_sharded(path, built, 2);
  const std::string valid = slurp(path);
  const auto info = index::SpectrumIndex::read_info(path);
  ASSERT_GE(info.shard_count, 2u);

  // Payload cut short: the recorded file size no longer matches.
  spew(path, valid.substr(0, valid.size() - 64));
  EXPECT_EQ(load_failure_kind(path), Kind::kTruncated);

  // A flipped bit in every per-shard payload section is caught by a
  // verifying load.
  index::LoadOptions verify;
  verify.verify_checksums = true;
  verify.validate_payload = true;
  for (const auto& section : info.sections) {
    if (section.id == index::SectionId::kShardTable) continue;
    std::string bad = valid;
    bad[section.offset + section.bytes / 2] ^= 0x20;
    spew(path, bad);
    EXPECT_EQ(load_failure_kind(path, verify), Kind::kChecksum);
  }

  // The shard table's own checksum is verified on every metadata read,
  // so a flipped shard row fails even a default (lazy) load.
  const auto table =
      std::find_if(info.sections.begin(), info.sections.end(),
                   [](const index::IndexInfo::Section& s) {
                     return s.id == index::SectionId::kShardTable;
                   });
  ASSERT_NE(table, info.sections.end());
  std::string bad = valid;
  bad[table->offset + 4] ^= 0x01;
  spew(path, bad);
  EXPECT_EQ(load_failure_kind(path), Kind::kChecksum);
  EXPECT_THROW((void)index::SpectrumIndex::read_info(path),
               index::IndexError);

  spew(path, valid);
  EXPECT_NO_THROW((void)index::SpectrumIndex::load(path, verify));
  std::remove(path.c_str());
}

TEST(KSpectrum, ValidateSortedCountsFindsEachViolation) {
  using kspec::KSpectrum;
  EXPECT_FALSE(KSpectrum::validate_sorted_counts({}, {}, 8).has_value());
  std::vector<seq::KmerCode> codes{3, 9, 20};
  std::vector<std::uint32_t> counts{1, 2, 3};
  EXPECT_FALSE(KSpectrum::validate_sorted_counts(codes, counts, 8).has_value());

  const std::vector<std::uint32_t> short_counts{1, 2};
  EXPECT_TRUE(
      KSpectrum::validate_sorted_counts(codes, short_counts, 8).has_value());

  const std::vector<seq::KmerCode> unsorted{9, 3, 20};
  EXPECT_TRUE(
      KSpectrum::validate_sorted_counts(unsorted, counts, 8).has_value());

  const std::vector<seq::KmerCode> duplicated{3, 3, 20};
  EXPECT_TRUE(
      KSpectrum::validate_sorted_counts(duplicated, counts, 8).has_value());

  const std::vector<std::uint32_t> zero_count{1, 0, 3};
  EXPECT_TRUE(
      KSpectrum::validate_sorted_counts(codes, zero_count, 8).has_value());

  // Code wider than 2k bits (k=2 -> 4-bit space, 20 needs 5).
  EXPECT_TRUE(
      KSpectrum::validate_sorted_counts(codes, counts, 2).has_value());
}

// --- Pipeline integration ---------------------------------------------

sim::SimulatedReads make_run(std::uint64_t seed, double coverage = 25.0) {
  util::Rng rng(seed);
  sim::GenomeSpec gspec;
  gspec.length = 20000;
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = coverage;
  return sim::simulate_reads(genome.sequence, model, cfg, rng);
}

std::string to_fastq(const seq::ReadSet& reads) {
  std::ostringstream os;
  io::write_fastq(os, reads);
  return os.str();
}

core::CorrectionPipeline::StreamFactory factory_for(std::string fastq) {
  return [fastq = std::move(fastq)] {
    return std::make_unique<std::istringstream>(fastq);
  };
}

std::unique_ptr<core::Corrector> make_method(const std::string& name) {
  core::CorrectorConfig config;
  config.genome_length = 20000;
  config.error_rate = 0.01;
  return core::make_corrector(name, config);
}

TEST(CorrectionPipeline, LoadIndexReproducesFreshRunByteForByte) {
  const auto run = make_run(20260806);
  const std::string fastq = to_fastq(run.reads);
  const std::string index_path = temp_path("pipeline_index");

  // redeem sizes its matrices from the InputSummary, so identical output
  // additionally proves the summary persisted in the index header.
  for (const std::string method : {"sap", "redeem"}) {
    core::PipelineOptions plain_opts;
    std::ostringstream plain_out;
    core::CorrectionPipeline plain(make_method(method), plain_opts);
    const auto plain_result = plain.run(factory_for(fastq), plain_out);
    EXPECT_TRUE(plain_result.streamed);
    EXPECT_FALSE(plain_result.pass1_skipped);
    EXPECT_EQ(plain_result.report.extra("index_saved"), 0u);

    core::PipelineOptions save_opts;
    save_opts.save_index_path = index_path;
    std::ostringstream save_out;
    core::CorrectionPipeline saver(make_method(method), save_opts);
    const auto save_result = saver.run(factory_for(fastq), save_out);
    EXPECT_FALSE(save_result.pass1_skipped);
    EXPECT_EQ(save_result.report.extra("index_saved"), 1u);
    EXPECT_EQ(save_result.report.note_or("index_path"), index_path);
    EXPECT_FALSE(save_result.report.note_or("index_checksum").empty());

    core::PipelineOptions load_opts;
    load_opts.load_index_path = index_path;
    std::ostringstream load_out;
    core::CorrectionPipeline loader(make_method(method), load_opts);
    const auto load_result = loader.run(factory_for(fastq), load_out);
    EXPECT_TRUE(load_result.pass1_skipped);
    EXPECT_EQ(load_result.report.extra("pass1_skipped"), 1u);
    EXPECT_EQ(load_result.report.note_or("index_path"), index_path);
    EXPECT_EQ(load_result.report.note_or("index_checksum"),
              save_result.report.note_or("index_checksum"));
    // The loaded run never saw the reads in pass 1; the summary must
    // come from the index header and match the fresh run exactly.
    EXPECT_EQ(load_result.input.reads, plain_result.input.reads);
    EXPECT_EQ(load_result.input.bases, plain_result.input.bases);
    EXPECT_EQ(load_result.input.max_read_length,
              plain_result.input.max_read_length);

    EXPECT_EQ(save_out.str(), plain_out.str()) << method;
    EXPECT_EQ(load_out.str(), plain_out.str()) << method;
    std::remove(index_path.c_str());
  }
}

TEST(CorrectionPipeline, LoadIndexRejectsParameterMismatch) {
  const auto run = make_run(77, 10.0);
  const std::string fastq = to_fastq(run.reads);

  auto sap = make_method("sap");
  const int needed_k = sap->spectrum_k();
  ASSERT_GT(needed_k, 0);

  // An index built at a different k: cross-check must fail fast.
  const auto wrong = kspec::KSpectrum::build(run.reads, needed_k + 1, true);
  index::IndexBuildInfo build;
  build.k = needed_k + 1;
  build.both_strands = true;
  const std::string path = temp_path("mismatch_k");
  index::write_spectrum_index(path, wrong, build);

  core::PipelineOptions opts;
  opts.load_index_path = path;
  core::CorrectionPipeline pipeline(std::move(sap), opts);
  std::ostringstream out;
  EXPECT_THROW(pipeline.run(factory_for(fastq), out), std::invalid_argument);

  // Same k, opposite strand convention.
  const auto same_k = kspec::KSpectrum::build(run.reads, needed_k, true);
  build.k = needed_k;
  build.both_strands = false;
  index::write_spectrum_index(path, same_k, build);
  core::CorrectionPipeline pipeline2(make_method("sap"), opts);
  EXPECT_THROW(pipeline2.run(factory_for(fastq), out), std::invalid_argument);
  std::remove(path.c_str());
}

// The ISSUE acceptance criterion: on input whose spectrum exceeds the
// budget, a budget-constrained run completes with the builder's own
// peak accounting under the budget and output byte-identical to the
// unconstrained run — for every registered method.
TEST(CorrectionPipeline, BudgetRunMatchesUnconstrainedForEveryMethod) {
  const auto run = make_run(20260808, 12.0);
  const std::string fastq = to_fastq(run.reads);
  constexpr std::size_t kBudget = 400000;

  for (const auto& info : core::registered_methods()) {
    std::ostringstream plain_out;
    core::CorrectionPipeline plain(make_method(info.name), {});
    const auto plain_result = plain.run(factory_for(fastq), plain_out);

    core::PipelineOptions budget_opts;
    budget_opts.memory_budget_bytes = kBudget;
    budget_opts.spill_dir = testing::TempDir();
    std::ostringstream budget_out;
    core::CorrectionPipeline budgeted(make_method(info.name), budget_opts);
    const auto budget_result = budgeted.run(factory_for(fastq), budget_out);

    EXPECT_EQ(budget_out.str(), plain_out.str()) << info.name;
    EXPECT_EQ(budget_result.report.reads, plain_result.report.reads)
        << info.name;
    if (info.streaming) {
      EXPECT_TRUE(budget_result.spectrum_spilled) << info.name;
      EXPECT_GE(budget_result.spectrum_shards, 2u) << info.name;
      EXPECT_GT(budget_result.spectrum_spilled_bytes, 0u) << info.name;
      EXPECT_GT(budget_result.spectrum_peak_tracked_bytes, 0u) << info.name;
      EXPECT_LE(budget_result.spectrum_peak_tracked_bytes, kBudget)
          << info.name << ": builder accounting exceeded the budget";
      EXPECT_EQ(budget_result.report.extra("spectrum_spilled"), 1u);
    } else {
      // Buffered methods never build a streamed spectrum; the budget is
      // inert and the report stays free of spill extras.
      EXPECT_FALSE(budget_result.spectrum_spilled) << info.name;
      EXPECT_EQ(budget_result.report.extra("spectrum_spilled"), 0u);
    }
  }
}

TEST(CorrectionPipeline, BudgetIdentityAcrossThreadsAndBudgets) {
  const auto run = make_run(424242, 12.0);
  const std::string fastq = to_fastq(run.reads);

  std::ostringstream reference_out;
  core::CorrectionPipeline reference(make_method("sap"), {});
  (void)reference.run(factory_for(fastq), reference_out);

  for (const std::size_t threads : {1ul, 2ul, 4ul, 8ul}) {
    for (const std::size_t budget :
         {std::size_t{300000}, std::size_t{450000}, std::size_t{900000}}) {
      core::PipelineOptions opts;
      opts.threads = threads;
      opts.batch_size = 512;
      opts.memory_budget_bytes = budget;
      opts.spill_dir = testing::TempDir();
      std::ostringstream out;
      core::CorrectionPipeline pipeline(make_method("sap"), opts);
      const auto result = pipeline.run(factory_for(fastq), out);
      EXPECT_TRUE(result.spectrum_spilled)
          << "threads=" << threads << " budget=" << budget;
      EXPECT_LE(result.spectrum_peak_tracked_bytes, budget)
          << "threads=" << threads << " budget=" << budget;
      EXPECT_EQ(out.str(), reference_out.str())
          << "threads=" << threads << " budget=" << budget;
    }
  }
}

TEST(CorrectionPipeline, BudgetSaveIndexIsShardedAndReloadable) {
  const auto run = make_run(99, 12.0);
  const std::string fastq = to_fastq(run.reads);
  const std::string path = temp_path("budget_saved");

  std::ostringstream plain_out;
  core::CorrectionPipeline plain(make_method("sap"), {});
  (void)plain.run(factory_for(fastq), plain_out);

  core::PipelineOptions save_opts;
  save_opts.memory_budget_bytes = 400000;
  save_opts.spill_dir = testing::TempDir();
  save_opts.save_index_path = path;
  std::ostringstream save_out;
  core::CorrectionPipeline saver(make_method("sap"), save_opts);
  const auto save_result = saver.run(factory_for(fastq), save_out);
  EXPECT_TRUE(save_result.spectrum_spilled);
  EXPECT_EQ(save_result.report.extra("index_saved"), 1u);
  EXPECT_EQ(save_out.str(), plain_out.str());

  const auto info = index::SpectrumIndex::read_info(path);
  EXPECT_EQ(info.format_version, index::kFormatVersionSharded);
  EXPECT_EQ(info.shard_count, save_result.spectrum_shards);

  // A later --load-index run over the sharded file reproduces the
  // fresh run byte for byte, serving pass 2 from lazily mapped shards.
  core::PipelineOptions load_opts;
  load_opts.load_index_path = path;
  std::ostringstream load_out;
  core::CorrectionPipeline loader(make_method("sap"), load_opts);
  const auto load_result = loader.run(factory_for(fastq), load_out);
  EXPECT_TRUE(load_result.pass1_skipped);
  EXPECT_EQ(load_out.str(), plain_out.str());
  std::remove(path.c_str());
}

TEST(CorrectionPipeline, BufferedMethodsRejectIndexFlags) {
  const auto run = make_run(55, 10.0);
  const std::string fastq = to_fastq(run.reads);
  const std::string path = temp_path("buffered_reject");

  core::PipelineOptions load_opts;
  load_opts.load_index_path = path;
  core::CorrectionPipeline loading(make_method("reptile"), load_opts);
  std::ostringstream out;
  EXPECT_THROW(loading.run(factory_for(fastq), out), std::invalid_argument);

  core::PipelineOptions save_opts;
  save_opts.save_index_path = path;
  core::CorrectionPipeline saving(make_method("reptile"), save_opts);
  EXPECT_THROW(saving.run(factory_for(fastq), out), std::invalid_argument);
}

}  // namespace
