// Property tests for the 2-bit packed pass-2 hot path: PackedSeq
// round-trips, window extraction vs the string-slice encode path, the
// SIMD kernels vs their scalar references at every compiled dispatch
// level, and the batched spectrum/tile-table probes vs their
// single-probe counterparts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kspec/kspectrum.hpp"
#include "kspec/neighborhood.hpp"
#include "kspec/tile_table.hpp"
#include "seq/alphabet.hpp"
#include "seq/kmer.hpp"
#include "seq/packed.hpp"
#include "seq/read.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using namespace ngs;

/// Random sequence of length n over ACGT with occasional N runs and
/// lowercase/invalid characters, exercising every normalization rule.
std::string random_bases(util::Rng& rng, std::size_t n, bool with_junk) {
  static constexpr char kUpper[] = {'A', 'C', 'G', 'T'};
  static constexpr char kLower[] = {'a', 'c', 'g', 't'};
  std::string s;
  s.reserve(n);
  while (s.size() < n) {
    const std::uint64_t roll = rng.below(100);
    if (with_junk && roll < 6) {
      // N run of length 1-5 (clipped at n).
      const std::size_t run = 1 + rng.below(5);
      for (std::size_t i = 0; i < run && s.size() < n; ++i) s.push_back('N');
    } else if (with_junk && roll < 9) {
      s.push_back(kLower[rng.below(4)]);
    } else if (with_junk && roll < 10) {
      s.push_back("RYKMX."[rng.below(6)]);  // other non-ACGT junk
    } else {
      s.push_back(kUpper[rng.below(4)]);
    }
  }
  return s;
}

/// The round-trip normalization contract: uppercase ACGT survive,
/// everything else becomes 'N'.
std::string normalized(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    const auto code = seq::base_to_code(c);
    c = code == seq::kInvalidBase ? 'N' : seq::code_to_base(code);
  }
  return out;
}

// ---------------------------------------------------------------------
// PackedSeq round trips.

TEST(PackedSeq, RoundTripAllLengths) {
  util::Rng rng(1234);
  seq::PackedSeq ps;
  for (std::size_t n = 0; n <= 512; ++n) {
    const std::string s = random_bases(rng, n, /*with_junk=*/true);
    ps.assign(s);
    ASSERT_EQ(ps.size(), n);
    EXPECT_EQ(ps.to_string(), normalized(s)) << "length " << n;
    for (std::size_t i = 0; i < n; ++i) {
      const auto code = seq::base_to_code(s[i]);
      ASSERT_EQ(ps.is_n(i), code == seq::kInvalidBase) << "pos " << i;
      if (code != seq::kInvalidBase) {
        ASSERT_EQ(ps.base_code(i), code) << "pos " << i;
      }
    }
  }
}

TEST(PackedSeq, AssignReusesBuffers) {
  seq::PackedSeq ps;
  ps.assign("ACGTNNACGTACGTACGTACGTACGTACGTACGTACGT");
  ps.assign("TTT");
  EXPECT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps.to_string(), "TTT");
  ps.assign("");
  EXPECT_TRUE(ps.empty());
  EXPECT_EQ(ps.to_string(), "");
}

TEST(PackedSeq, WindowMatchesEncodeKmerAtAllOffsets) {
  util::Rng rng(99);
  seq::PackedSeq ps;
  for (const std::size_t n : {1ul, 31ul, 32ul, 33ul, 63ul, 64ul, 65ul,
                              127ul, 200ul, 512ul}) {
    const std::string s = random_bases(rng, n, /*with_junk=*/true);
    ps.assign(s);
    for (const int len : {1, 2, 10, 15, 16, 20, 31, 32}) {
      if (static_cast<std::size_t>(len) > n) continue;
      for (std::size_t pos = 0; pos + static_cast<std::size_t>(len) <= n;
           ++pos) {
        const auto expect = seq::encode_kmer(
            std::string_view(s).substr(pos, static_cast<std::size_t>(len)));
        const auto got = ps.window(pos, len);
        ASSERT_EQ(got.has_value(), expect.has_value())
            << "n=" << n << " pos=" << pos << " len=" << len;
        if (expect) {
          ASSERT_EQ(*got, *expect)
              << "n=" << n << " pos=" << pos << " len=" << len;
        }
      }
    }
  }
}

TEST(PackedSeq, SetBaseWritesCodeAndClearsN) {
  util::Rng rng(7);
  seq::PackedSeq ps;
  const std::string s = random_bases(rng, 200, /*with_junk=*/true);
  ps.assign(s);
  std::string mirror = normalized(s);
  for (int round = 0; round < 500; ++round) {
    const std::size_t i = rng.below(200);
    const auto code = static_cast<std::uint8_t>(rng.below(4));
    ps.set_base(i, code);
    mirror[i] = seq::code_to_base(code);
    ASSERT_FALSE(ps.is_n(i));
    ASSERT_EQ(ps.base_code(i), code);
  }
  EXPECT_EQ(ps.to_string(), mirror);
}

TEST(PackedSeq, ReverseComplementMatchesStringPath) {
  util::Rng rng(31337);
  seq::PackedSeq ps, rc, back;
  for (const std::size_t n :
       {0ul, 1ul, 2ul, 31ul, 32ul, 33ul, 64ul, 65ul, 100ul, 511ul, 512ul}) {
    const std::string s = random_bases(rng, n, /*with_junk=*/true);
    ps.assign(s);
    ps.reverse_complement_into(rc);
    ASSERT_EQ(rc.size(), n);
    EXPECT_EQ(rc.to_string(), seq::reverse_complement(s)) << "length " << n;
    // Double reverse complement restores the normalized sequence.
    rc.reverse_complement_into(back);
    EXPECT_EQ(back.to_string(), normalized(s)) << "length " << n;
  }
}

// ---------------------------------------------------------------------
// SIMD kernels: every compiled dispatch level agrees with scalar.

class SimdDispatch : public ::testing::TestWithParam<util::simd::Level> {
 protected:
  void SetUp() override {
    orig_ = util::simd::active();
    if (!util::simd::supported(GetParam())) {
      GTEST_SKIP() << "level " << util::simd::level_name(GetParam())
                   << " not supported on this build/CPU";
    }
    util::simd::force_level(GetParam());
  }
  void TearDown() override { util::simd::force_level(orig_); }

 private:
  util::simd::Level orig_ = util::simd::Level::kScalar;
};

TEST_P(SimdDispatch, HammingBatchMatchesScalarKernel) {
  util::Rng rng(42);
  constexpr std::size_t kN = 1000;
  std::vector<std::uint64_t> codes(kN);
  std::vector<std::uint8_t> hd(kN);
  for (int round = 0; round < 20; ++round) {
    const int k = 1 + static_cast<int>(rng.below(32));
    const std::uint64_t mask =
        k == 32 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (2 * k)) - 1);
    const std::uint64_t query = rng() & mask;
    for (auto& c : codes) {
      // Bias toward near neighbors so small distances are exercised.
      c = rng.below(4) == 0 ? (query ^ (std::uint64_t{3} << (2 * rng.below(
                                            static_cast<std::uint64_t>(k)))))
                            : (rng() & mask);
    }
    util::simd::hamming_batch(codes.data(), kN, query, hd.data());
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(static_cast<int>(hd[i]),
                util::simd::hamming2(codes[i], query))
          << "k=" << k << " i=" << i;
    }
  }
}

TEST_P(SimdDispatch, MaskedRunFilterMatchesReferenceScan) {
  util::Rng rng(4242);
  constexpr int kK = 12;
  const std::uint64_t mask = (std::uint64_t{1} << (2 * kK)) - 1;
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + rng.below(300);
    std::vector<std::uint64_t> codes(n);
    for (auto& c : codes) c = rng() & mask;
    std::vector<std::uint32_t> order(n);
    const std::uint64_t keep =
        ~(std::uint64_t{0xf} << (2 * rng.below(kK - 1))) & mask;
    std::sort(codes.begin(), codes.end());
    for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return (codes[a] & keep) < (codes[b] & keep);
                     });
    const std::uint64_t query = codes[rng.below(n)] ^
                                (rng.below(2) ? 0 : (3ull << (2 * rng.below(kK))));
    const std::uint64_t key = query & keep;
    const int d = 1 + static_cast<int>(rng.below(2));
    // Reference: plain scan from the first masked match.
    std::size_t start = 0;
    while (start < n && (codes[order[start]] & keep) < key) ++start;
    std::vector<std::uint32_t> expect;
    std::size_t expect_consumed = 0;
    for (std::size_t i = start; i < n; ++i) {
      if ((codes[order[i]] & keep) != key) break;
      ++expect_consumed;
      const int hd = util::simd::hamming2(codes[order[i]], query);
      if (hd >= 1 && hd <= d) expect.push_back(order[i]);
    }
    std::vector<std::uint32_t> got(n);
    std::size_t got_n = 0;
    const std::size_t consumed = util::simd::masked_run_filter(
        codes.data(), order.data() + start, n - start, keep, key, query, d,
        got.data(), &got_n);
    ASSERT_EQ(consumed, expect_consumed) << "round " << round;
    got.resize(got_n);
    ASSERT_EQ(got, expect) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, SimdDispatch,
    ::testing::Values(util::simd::Level::kScalar, util::simd::Level::kAVX2,
                      util::simd::Level::kNEON),
    [](const ::testing::TestParamInfo<util::simd::Level>& info) {
      return util::simd::level_name(info.param);
    });

// ---------------------------------------------------------------------
// Neighborhood candidates: scalar and the active SIMD level agree on
// 10k random neighborhoods, for both retrieval strategies.

TEST(SimdNeighborhoods, ScalarAndBestLevelIdenticalCandidates) {
  util::Rng rng(777);
  constexpr int kK = 12;
  seq::ReadSet reads;
  for (int i = 0; i < 400; ++i) {
    reads.reads.push_back({"r", random_bases(rng, 60, false), {}});
  }
  const auto spectrum = kspec::KSpectrum::build(reads, kK, true);
  ASSERT_GT(spectrum.size(), 0u);
  const kspec::MaskedSortIndex index(spectrum, /*c=*/4, /*d=*/2);
  const kspec::CandidateEnumerator enumerator(spectrum);

  const util::simd::Level best = util::simd::active();
  const std::uint64_t mask = (std::uint64_t{1} << (2 * kK)) - 1;
  std::vector<std::uint32_t> hits;
  std::vector<seq::KmerCode> enum_scratch;
  std::size_t nonempty = 0;
  for (int q = 0; q < 10000; ++q) {
    // Half the queries perturb a spectrum kmer (guaranteed dense
    // neighborhoods), half are uniform.
    const std::uint64_t query =
        q % 2 == 0 ? spectrum.code_at(rng.below(spectrum.size())) ^
                         (3ull << (2 * rng.below(kK)))
                   : (rng() & mask);
    std::vector<std::pair<seq::KmerCode, std::size_t>> scalar_masked,
        best_masked, scalar_enum, best_enum;
    util::simd::force_level(util::simd::Level::kScalar);
    index.for_each_neighbor(
        query, [&](seq::KmerCode c, std::size_t i) {
          scalar_masked.emplace_back(c, i);
        },
        hits);
    enumerator.for_each_neighbor(
        query, 2,
        [&](seq::KmerCode c, std::size_t i) {
          scalar_enum.emplace_back(c, i);
        },
        enum_scratch);
    util::simd::force_level(best);
    index.for_each_neighbor(
        query, [&](seq::KmerCode c, std::size_t i) {
          best_masked.emplace_back(c, i);
        },
        hits);
    enumerator.for_each_neighbor(
        query, 2,
        [&](seq::KmerCode c, std::size_t i) {
          best_enum.emplace_back(c, i);
        },
        enum_scratch);
    ASSERT_EQ(scalar_masked, best_masked) << "query " << q;
    ASSERT_EQ(scalar_enum, best_enum) << "query " << q;
    if (!scalar_masked.empty()) ++nonempty;
  }
  util::simd::force_level(best);
  // The perturbed half must actually produce neighbors.
  EXPECT_GT(nonempty, 4000u);
}

// ---------------------------------------------------------------------
// Batched probes agree with the single-probe paths.

TEST(BatchedLookup, SpectrumIndexOfBatchMatchesSingle) {
  util::Rng rng(2024);
  seq::ReadSet reads;
  for (int i = 0; i < 300; ++i) {
    reads.reads.push_back({"r", random_bases(rng, 50, false), {}});
  }
  constexpr int kK = 11;
  const auto spectrum = kspec::KSpectrum::build(reads, kK, true);
  const std::uint64_t mask = (std::uint64_t{1} << (2 * kK)) - 1;
  for (const std::size_t n : {0ul, 1ul, 15ul, 16ul, 17ul, 63ul, 64ul, 65ul,
                              200ul, 1000ul}) {
    std::vector<seq::KmerCode> probes(n);
    for (auto& p : probes) {
      p = rng.below(2) ? spectrum.code_at(rng.below(spectrum.size()))
                       : (rng() & mask);
    }
    std::vector<std::int64_t> got(n);
    spectrum.index_of_batch(probes, got);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], spectrum.index_of(probes[i])) << "n=" << n << " i=" << i;
    }
  }
  std::vector<std::int64_t> bad(3);
  EXPECT_THROW(
      spectrum.index_of_batch(std::vector<seq::KmerCode>(2), bad),
      std::invalid_argument);
}

TEST(BatchedLookup, TileTableOgBatchMatchesSingle) {
  util::Rng rng(555);
  seq::ReadSet reads;
  for (int i = 0; i < 300; ++i) {
    reads.reads.push_back({"r", random_bases(rng, 50, false), {}});
  }
  kspec::TileParams tp;
  tp.k = 10;
  tp.overlap = 0;  // 20bp tiles, the D3 configuration
  const auto table = kspec::TileTable::build(reads, tp);
  ASSERT_GT(table.size(), 0u);
  const std::uint64_t mask = (std::uint64_t{1} << (2 * tp.tile_length())) - 1;
  for (const std::size_t n : {0ul, 1ul, 16ul, 63ul, 64ul, 65ul, 500ul}) {
    std::vector<seq::KmerCode> tiles(n);
    for (auto& t : tiles) {
      t = rng.below(2) ? table.code_at(rng.below(table.size()))
                       : (rng() & mask);
    }
    std::vector<std::uint32_t> got(n);
    table.og_batch(tiles, got);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], table.og(tiles[i])) << "n=" << n << " i=" << i;
    }
  }
}

// og_cross must agree with per-pair counts() for every (a1, a2) pair —
// including the overlap > 0 layout (distinct a2 kmers masking to the
// same tile contribution) and the large-side fallback path.
TEST(BatchedLookup, TileTableOgCrossMatchesPerPairCounts) {
  util::Rng rng(777);
  seq::ReadSet reads;
  for (int i = 0; i < 300; ++i) {
    reads.reads.push_back({"r", random_bases(rng, 50, false), {}});
  }
  for (const int overlap : {0, 3}) {
    kspec::TileParams tp;
    tp.k = 10;
    tp.overlap = overlap;
    const auto table = kspec::TileTable::build(reads, tp);
    ASSERT_GT(table.size(), 0u);
    const std::uint64_t kmask = (std::uint64_t{1} << (2 * tp.k)) - 1;
    const int low_bits = 2 * (tp.k - tp.overlap);
    const auto ref_og = [&](seq::KmerCode a1, seq::KmerCode a2) {
      return table
          .counts((a1 << low_bits) |
                  (a2 & ((seq::KmerCode{1} << low_bits) - 1)))
          .og;
    };
    // Mix present tile halves (so some pairs hit) with random kmers.
    const auto random_side = [&](std::size_t n) {
      std::vector<seq::KmerCode> side(n);
      for (auto& v : side) {
        if (rng.below(2)) {
          const seq::KmerCode tile = table.code_at(rng.below(table.size()));
          v = rng.below(2) ? (tile >> low_bits) : (tile & kmask);
        } else {
          v = rng() & kmask;
        }
      }
      return side;
    };
    for (const auto& [n1, n2] : {std::pair<std::size_t, std::size_t>{0, 5},
                                {5, 0},
                                {1, 1},
                                {16, 16},
                                {17, 33},
                                {70, 3},   // n1 fallback
                                {3, 70}})  // n2 fallback
    {
      const auto a1 = random_side(n1);
      const auto a2 = random_side(n2);
      std::vector<std::uint32_t> got(n1 * n2);
      table.og_cross(a1, a2, got);
      for (std::size_t i = 0; i < n1; ++i) {
        for (std::size_t j = 0; j < n2; ++j) {
          ASSERT_EQ(got[i * n2 + j], ref_og(a1[i], a2[j]))
              << "overlap=" << overlap << " n1=" << n1 << " n2=" << n2
              << " i=" << i << " j=" << j;
        }
      }
    }
    std::vector<std::uint32_t> bad(3);
    EXPECT_THROW(
        table.og_cross(std::vector<seq::KmerCode>(2),
                       std::vector<seq::KmerCode>(2), bad),
        std::invalid_argument);
  }
}

}  // namespace
