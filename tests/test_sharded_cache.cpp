// util::ShardedCache: the concurrent bounded memo cache behind the
// pass-2 tile-decision memo. Covers counter accuracy, deterministic
// bounded-capacity eviction, generation-based reset, and a concurrent
// insert/lookup storm (run under TSan via the `sanitize` ctest label /
// the tsan CMake preset).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/sharded_cache.hpp"

namespace {

using ngs::util::ShardedCache;

/// The pure function being memoized in these tests: any lookup that
/// hits must return exactly this value for its key.
std::uint64_t value_of(std::uint64_t key) {
  return key * 0x9e3779b97f4a7c15ULL + 1;
}

TEST(ShardedCache, StoresAndLooksUp) {
  ShardedCache cache(1 << 20);
  std::uint64_t v = 0;
  EXPECT_FALSE(cache.lookup(42, v));
  cache.store(42, value_of(42));
  ASSERT_TRUE(cache.lookup(42, v));
  EXPECT_EQ(v, value_of(42));
  // Overwrite keeps a single entry.
  cache.store(42, 7);
  ASSERT_TRUE(cache.lookup(42, v));
  EXPECT_EQ(v, 7u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedCache, CountersAreExact) {
  ShardedCache cache(1 << 20);
  std::uint64_t v = 0;
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_FALSE(cache.lookup(k, v));
  for (std::uint64_t k = 0; k < 100; ++k) cache.store(k, value_of(k));
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(cache.lookup(k, v));
  for (std::uint64_t k = 0; k < 50; ++k) EXPECT_TRUE(cache.lookup(k, v));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 100u);
  EXPECT_EQ(stats.hits, 150u);
  EXPECT_EQ(stats.insertions, 100u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 150.0 / 250.0);
  EXPECT_EQ(cache.size(), 100u);
}

TEST(ShardedCache, CapacityIsBoundedAndEvictionDeterministic) {
  // Tiny single-shard cache: capacity clamps to one probe window.
  auto fill = [](ShardedCache& cache, std::uint64_t n) {
    for (std::uint64_t k = 1; k <= n; ++k) cache.store(k, value_of(k));
  };
  ShardedCache a(1, 1), b(1, 1);
  EXPECT_EQ(a.num_shards(), 1u);
  const std::uint64_t n = 10 * a.capacity();
  fill(a, n);
  fill(b, n);
  EXPECT_LE(a.size(), a.capacity());
  EXPECT_GT(a.stats().evictions, 0u);
  // Same store sequence => identical resident set and counters: the
  // home-slot eviction rule is a pure function of the sequence.
  std::uint64_t va = 0, vb = 0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    EXPECT_EQ(a.lookup(k, va), b.lookup(k, vb)) << k;
    EXPECT_EQ(va, vb) << k;
  }
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().evictions, b.stats().evictions);
  // Every hit still returns the memoized function's value.
  for (std::uint64_t k = 1; k <= n; ++k) {
    if (a.lookup(k, va)) {
      EXPECT_EQ(va, value_of(k)) << k;
    }
  }
}

TEST(ShardedCache, GenerationResetEmptiesInO1PerShard) {
  ShardedCache cache(1 << 16);
  for (std::uint64_t k = 0; k < 200; ++k) cache.store(k, value_of(k));
  EXPECT_EQ(cache.size(), 200u);
  cache.reset();
  EXPECT_EQ(cache.size(), 0u);
  std::uint64_t v = 0;
  for (std::uint64_t k = 0; k < 200; ++k) {
    EXPECT_FALSE(cache.lookup(k, v)) << k;
  }
  // The cache is fully usable after reset.
  cache.store(5, 99);
  ASSERT_TRUE(cache.lookup(5, v));
  EXPECT_EQ(v, 99u);
  EXPECT_EQ(cache.size(), 1u);
  // Counters survive reset (lifetime totals).
  EXPECT_EQ(cache.stats().insertions, 201u);
}

TEST(ShardedCache, RepeatedResetsNeverAliasOldEntries) {
  ShardedCache cache(1 << 12, 2);
  for (int round = 0; round < 50; ++round) {
    std::uint64_t v = 0;
    EXPECT_FALSE(cache.lookup(7, v)) << round;
    cache.store(7, static_cast<std::uint64_t>(round));
    ASSERT_TRUE(cache.lookup(7, v));
    EXPECT_EQ(v, static_cast<std::uint64_t>(round));
    cache.reset();
  }
}

TEST(ShardedCache, ConcurrentStormKeepsValuesConsistent) {
  // Memoizing workers race on an intentionally small cache (evictions
  // and overwrites happen constantly). Invariants: a hit always returns
  // value_of(key), and the aggregate counters account for every lookup.
  ShardedCache cache(1 << 14);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kOpsPerThread = 20000;
  constexpr std::uint64_t kKeyRange = 4096;
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t x = 0x243f6a8885a308d3ULL + static_cast<std::uint64_t>(t);
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t key = x % kKeyRange;
        std::uint64_t v = 0;
        if (cache.lookup(key, v)) {
          if (v != value_of(key)) ++bad;
        } else {
          cache.store(key, value_of(key));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(ShardedCache, ShardCountDefaultsAndRounding) {
  ShardedCache one(1 << 20, 1);
  EXPECT_EQ(one.num_shards(), 1u);
  ShardedCache rounded(1 << 20, 5);  // non-power-of-two rounds up
  EXPECT_EQ(rounded.num_shards(), 8u);
  ShardedCache defaulted(1 << 20);
  EXPECT_GE(defaulted.num_shards(), 1u);
  EXPECT_EQ(defaulted.num_shards() & (defaulted.num_shards() - 1), 0u);
  EXPECT_LE(defaulted.capacity_bytes(), (1u << 20) + 64 * defaulted.num_shards());
}

}  // namespace
