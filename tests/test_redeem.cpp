#include <gtest/gtest.h>

#include <algorithm>

#include "eval/correction_metrics.hpp"
#include "eval/kmer_classification.hpp"
#include "redeem/corrector.hpp"
#include "redeem/em_model.hpp"
#include "redeem/error_dist.hpp"
#include "redeem/threshold.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;

struct RepeatSetup {
  std::string genome;
  sim::SimulatedReads sim;
  sim::ErrorModel model;
};

RepeatSetup make_repeat_setup(double repeat_fraction, std::uint64_t seed,
                              double err = 0.008, double coverage = 50.0,
                              std::size_t repeat_len = 500) {
  util::Rng rng(seed);
  sim::GenomeSpec gspec;
  gspec.length = 20000;
  if (repeat_fraction > 0.0) {
    const auto span =
        static_cast<std::size_t>(repeat_fraction * gspec.length);
    gspec.repeats = {{repeat_len, span / repeat_len, 0.0}};
  }
  RepeatSetup s;
  s.genome = sim::simulate_genome(gspec, rng).sequence;
  s.model = sim::ErrorModel::illumina(36, err);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = coverage;
  s.sim = sim::simulate_reads(s.genome, s.model, cfg, rng);
  return s;
}

TEST(ErrorDist, NamesAndShapes) {
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  for (const auto kind :
       {redeem::ErrorDistKind::kTrueIllumina, redeem::ErrorDistKind::kWrongIllumina,
        redeem::ErrorDistKind::kTrueUniform, redeem::ErrorDistKind::kWrongUniform}) {
    const auto q = redeem::kmer_error_matrices(kind, 11, model);
    ASSERT_EQ(q.size(), 11u);
    for (const auto& m : q) {
      for (int a = 0; a < 4; ++a) {
        double sum = 0.0;
        for (int b = 0; b < 4; ++b) sum += m[a][b];
        ASSERT_NEAR(sum, 1.0, 1e-9);
      }
    }
  }
  EXPECT_STREQ(redeem::to_string(redeem::ErrorDistKind::kTrueIllumina),
               "tIED");
  EXPECT_STREQ(redeem::to_string(redeem::ErrorDistKind::kWrongUniform),
               "wUED");
}

TEST(RedeemModel, MassIsConserved) {
  const auto setup = make_repeat_setup(0.0, 3);
  const auto spectrum = kspec::KSpectrum::build(setup.sim.reads, 11, false);
  const auto q = redeem::kmer_error_matrices(
      redeem::ErrorDistKind::kTrueIllumina, 11, setup.model);
  redeem::RedeemParams params;
  const redeem::RedeemModel model(spectrum, q, params);
  // EM redistributes counts but conserves the total number of attempts.
  double total_t = 0.0, total_y = 0.0;
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    total_t += model.estimates()[i];
    total_y += spectrum.count_at(i);
  }
  EXPECT_NEAR(total_t / total_y, 1.0, 1e-6);
  EXPECT_GT(model.iterations_run(), 1);
}

TEST(RedeemModel, ShiftsMassFromErrorsToSources) {
  // The drain from an error kmer is proportional to T_source * pe, so it
  // concentrates on error kmers adjacent to repeats (the point of Ch. 3).
  const auto setup = make_repeat_setup(0.6, 5, 0.01, 60.0, 400);
  const auto spectrum = kspec::KSpectrum::build(setup.sim.reads, 11, false);
  const auto genome_spec =
      kspec::KSpectrum::build_from_sequence(setup.genome, 11, true);
  const auto q = redeem::kmer_error_matrices(
      redeem::ErrorDistKind::kTrueIllumina, 11, setup.model);
  const redeem::RedeemModel model(spectrum, q, {});
  const auto truth = eval::genome_truth(spectrum, genome_spec);

  double t_bad = 0, y_bad = 0, t_good = 0, y_good = 0;
  double t_bad_hi = 0, y_bad_hi = 0;  // repeat-shadow errors (Y >= 4)
  std::size_t n_bad = 0, n_good = 0;
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    if (truth[i]) {
      t_good += model.estimates()[i];
      y_good += spectrum.count_at(i);
      ++n_good;
    } else {
      t_bad += model.estimates()[i];
      y_bad += spectrum.count_at(i);
      ++n_bad;
      if (spectrum.count_at(i) >= 4) {
        t_bad_hi += model.estimates()[i];
        y_bad_hi += spectrum.count_at(i);
      }
    }
  }
  ASSERT_GT(n_bad, 100u);
  ASSERT_GT(n_good, 100u);
  // Directional shift: errors lose mass, genomic kmers gain it.
  EXPECT_LT(t_bad, y_bad - 0.02 * static_cast<double>(n_bad));
  EXPECT_GT(t_good, y_good);
  // The moderately-observed error kmers in repeat shadows — the ones raw
  // Y-thresholding misclassifies — must drain substantially.
  ASSERT_GT(y_bad_hi, 0.0);
  EXPECT_LT(t_bad_hi, y_bad_hi * 0.8);
}

TEST(RedeemModel, BeatsObservedCountsOnRepeats) {
  // The headline claim of Chapter 3: thresholding on T yields fewer
  // wrong predictions than thresholding on Y, especially with repeats.
  const auto setup = make_repeat_setup(0.5, 7);
  const auto spectrum = kspec::KSpectrum::build(setup.sim.reads, 11, false);
  const auto genome_spec =
      kspec::KSpectrum::build_from_sequence(setup.genome, 11, true);
  const auto q = redeem::kmer_error_matrices(
      redeem::ErrorDistKind::kTrueIllumina, 11, setup.model);
  const redeem::RedeemModel model(spectrum, q, {});
  const auto truth = eval::genome_truth(spectrum, genome_spec);

  const auto thresholds = eval::linear_thresholds(60.0, 0.5);
  const auto y_sweep =
      eval::sweep_thresholds(model.observed(), truth, thresholds);
  const auto t_sweep =
      eval::sweep_thresholds(model.estimates(), truth, thresholds);
  const auto y_best = eval::best_point(y_sweep);
  const auto t_best = eval::best_point(t_sweep);
  EXPECT_LT(t_best.wrong(), y_best.wrong())
      << "T-best " << t_best.wrong() << " vs Y-best " << y_best.wrong();
}

TEST(RedeemModel, BasePosteriorIsDistribution) {
  const auto setup = make_repeat_setup(0.2, 9);
  const auto spectrum = kspec::KSpectrum::build(setup.sim.reads, 11, false);
  const auto q = redeem::kmer_error_matrices(
      redeem::ErrorDistKind::kTrueIllumina, 11, setup.model);
  const redeem::RedeemModel model(spectrum, q, {});
  for (std::size_t l = 0; l < std::min<std::size_t>(50, spectrum.size());
       ++l) {
    for (int t = 0; t < 11; t += 5) {
      const auto pi = model.base_posterior(l, t);
      double sum = 0.0;
      for (const double v : pi) sum += v;
      ASSERT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(RedeemCorrector, CorrectsErrorsInRepeatRichData) {
  const auto setup = make_repeat_setup(0.7, 11, 0.01, 60.0, 400);
  const auto spectrum = kspec::KSpectrum::build(setup.sim.reads, 11, false);
  const auto q = redeem::kmer_error_matrices(
      redeem::ErrorDistKind::kTrueIllumina, 11, setup.model);
  const redeem::RedeemModel model(spectrum, q, {});
  redeem::RedeemCorrector corrector(model, {});
  redeem::RedeemCorrectionStats stats;
  const auto corrected = corrector.correct_all(setup.sim.reads, stats);
  const auto metrics = eval::evaluate_correction(setup.sim.reads, corrected);
  EXPECT_GT(stats.reads_flagged, 0u);
  EXPECT_GT(metrics.gain(), 0.3)
      << "TP=" << metrics.tp << " FP=" << metrics.fp << " FN=" << metrics.fn;
  EXPECT_GT(metrics.specificity(), 0.99);
}

TEST(RedeemCorrector, ShortReadsPassThrough) {
  const auto setup = make_repeat_setup(0.0, 13);
  const auto spectrum = kspec::KSpectrum::build(setup.sim.reads, 11, false);
  const auto q = redeem::kmer_error_matrices(
      redeem::ErrorDistKind::kTrueIllumina, 11, setup.model);
  const redeem::RedeemModel model(spectrum, q, {});
  redeem::RedeemCorrector corrector(model, {});
  redeem::RedeemCorrectionStats stats;
  const seq::Read tiny{"t", "ACGT", {}};
  EXPECT_EQ(corrector.correct(tiny, stats).bases, "ACGT");
}

TEST(ThresholdMixture, RecoversPlantedMixture) {
  // Synthetic T values: error mass near 1, genomic peaks near 40 and 80.
  util::Rng rng(17);
  std::vector<double> values;
  for (int i = 0; i < 6000; ++i) values.push_back(rng.gamma(1.5, 1.2));
  for (int i = 0; i < 9000; ++i) values.push_back(rng.normal(40.0, 6.0));
  for (int i = 0; i < 2000; ++i) values.push_back(rng.normal(80.0, 9.0));
  for (auto& v : values) v = std::max(v, 0.01);

  redeem::MixtureParams params;
  params.g_min = 1;
  params.g_max = 3;
  const auto fit = redeem::fit_threshold_mixture(values, params, rng);
  EXPECT_GE(fit.num_normals, 1);
  // The classification boundary must separate the error mass (~<10) from
  // the first genomic peak (~40).
  EXPECT_GT(fit.threshold, 3.0);
  EXPECT_LT(fit.threshold, 32.0);
  // Component weights should roughly reflect the planted proportions.
  EXPECT_NEAR(fit.pi_gamma != 0.0 ? fit.pi_gamma : fit.weights[0],
              6000.0 / 17000.0, 0.12);
}

TEST(ThresholdMixture, RejectsEmptyInput) {
  util::Rng rng(1);
  EXPECT_THROW(redeem::fit_threshold_mixture({}, {}, rng),
               std::invalid_argument);
}

TEST(ThresholdMixture, SubsamplingIsStable) {
  util::Rng rng(19);
  std::vector<double> values;
  for (int i = 0; i < 30000; ++i) values.push_back(rng.gamma(1.5, 1.0));
  for (int i = 0; i < 50000; ++i) values.push_back(rng.normal(50.0, 7.0));
  for (auto& v : values) v = std::max(v, 0.01);
  redeem::MixtureParams params;
  params.g_max = 2;
  params.max_values = 10000;
  const auto fit = redeem::fit_threshold_mixture(values, params, rng);
  EXPECT_GT(fit.threshold, 4.0);
  EXPECT_LT(fit.threshold, 40.0);
}

}  // namespace
