#include <gtest/gtest.h>

#include <cmath>

#include "seq/alphabet.hpp"
#include "seq/kmer.hpp"
#include "sim/datasets.hpp"
#include "sim/error_model.hpp"
#include "sim/genome.hpp"
#include "sim/metagenome.hpp"
#include "sim/read_sim.hpp"

namespace {

using namespace ngs;

TEST(Genome, LengthAndComposition) {
  util::Rng rng(1);
  sim::GenomeSpec spec;
  spec.length = 50000;
  const auto g = sim::simulate_genome(spec, rng);
  EXPECT_EQ(g.sequence.size(), 50000u);
  std::array<double, 4> freq{};
  for (char c : g.sequence) freq[seq::base_to_code(c)] += 1.0 / 50000;
  EXPECT_NEAR(freq[0], 0.28, 0.01);  // A
  EXPECT_NEAR(freq[1], 0.23, 0.01);  // C
  EXPECT_NEAR(freq[2], 0.22, 0.01);  // G
  EXPECT_NEAR(freq[3], 0.27, 0.01);  // T
}

TEST(Genome, RepeatFractionMatchesSpec) {
  util::Rng rng(2);
  sim::GenomeSpec spec;
  spec.length = 100000;
  spec.repeats = {{500, 40, 0.0}, {1500, 20, 0.0}};  // 50k bases = 50%
  const auto g = sim::simulate_genome(spec, rng);
  EXPECT_NEAR(g.repeat_fraction, 0.5, 1e-9);
  EXPECT_EQ(g.sequence.size(), 100000u);
}

TEST(Genome, ExactRepeatsCreateHighFrequencyKmers) {
  util::Rng rng(3);
  sim::GenomeSpec spec;
  spec.length = 60000;
  spec.repeats = {{800, 20, 0.0}};
  const auto g = sim::simulate_genome(spec, rng);
  // The repeat template's interior kmers should occur ~20 times.
  // Count the most frequent 16-mer occurrence.
  std::vector<seq::KmerCode> codes;
  seq::extract_kmer_codes(g.sequence, 16, codes);
  std::sort(codes.begin(), codes.end());
  std::size_t best = 0, run = 1;
  for (std::size_t i = 1; i < codes.size(); ++i) {
    run = (codes[i] == codes[i - 1]) ? run + 1 : 1;
    best = std::max(best, run);
  }
  EXPECT_GE(best, 20u);
}

TEST(Genome, RejectsOverfullRepeatSpec) {
  util::Rng rng(4);
  sim::GenomeSpec spec;
  spec.length = 1000;
  spec.repeats = {{500, 10, 0.0}};  // 5000 bases into a 1000-base genome
  EXPECT_THROW(sim::simulate_genome(spec, rng), std::invalid_argument);
}

TEST(ErrorModel, RowsAreDistributions) {
  for (const auto& model :
       {sim::ErrorModel::uniform(50, 0.01), sim::ErrorModel::illumina(50, 0.01),
        sim::ErrorModel::illumina_alternate(50, 0.01)}) {
    for (std::size_t i = 0; i < model.read_length(); ++i) {
      for (int a = 0; a < 4; ++a) {
        double sum = 0.0;
        for (int b = 0; b < 4; ++b) sum += model.matrix(i)[a][b];
        ASSERT_NEAR(sum, 1.0, 1e-12);
      }
    }
  }
}

TEST(ErrorModel, AverageRateMatchesTarget) {
  const auto model = sim::ErrorModel::illumina(36, 0.015);
  EXPECT_NEAR(model.average_error_rate(), 0.015, 0.002);
}

TEST(ErrorModel, IlluminaRampRisesTowardThreePrime) {
  const auto model = sim::ErrorModel::illumina(100, 0.02);
  EXPECT_LT(model.error_prob(0, 0), model.error_prob(99, 0));
  EXPECT_GT(model.error_prob(99, 0) / model.error_prob(0, 0), 3.0);
}

TEST(ErrorModel, SampleRespectsDistribution) {
  const auto model = sim::ErrorModel::uniform(10, 0.3);
  util::Rng rng(5);
  int errors = 0;
  constexpr int kTrials = 100000;
  for (int t = 0; t < kTrials; ++t) {
    errors += (model.sample(3, 2, rng) != 2);
  }
  EXPECT_NEAR(errors / static_cast<double>(kTrials), 0.3, 0.01);
}

TEST(ErrorModel, FromCountsRecoversRates) {
  std::vector<std::array<std::array<std::uint64_t, 4>, 4>> counts(1);
  counts[0][0] = {9000, 800, 100, 100};  // A misread 10% of the time
  counts[0][1] = {0, 10000, 0, 0};
  counts[0][2] = {0, 0, 10000, 0};
  counts[0][3] = {0, 0, 0, 10000};
  const auto model = sim::ErrorModel::from_counts(counts);
  EXPECT_NEAR(model.error_prob(0, 0), 0.1, 0.005);
  EXPECT_NEAR(model.matrix(0)[0][1], 0.08, 0.005);
  // Smoothing keeps all entries nonzero.
  EXPECT_GT(model.matrix(0)[1][0], 0.0);
}

TEST(ErrorModel, KmerPositionMatricesAreDistributions) {
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  const auto q = model.kmer_position_matrices(12);
  ASSERT_EQ(q.size(), 12u);
  for (const auto& m : q) {
    for (int a = 0; a < 4; ++a) {
      double sum = 0.0;
      for (int b = 0; b < 4; ++b) sum += m[a][b];
      ASSERT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(ErrorModel, KmerMisreadProbMultiplies) {
  const auto model = sim::ErrorModel::uniform(10, 0.03);
  const auto q = model.kmer_position_matrices(4);
  const auto a = seq::encode_kmer("ACGT").value();
  // Identity misread: (1-p)^4.
  EXPECT_NEAR(sim::kmer_misread_prob(q, a, a, 4), std::pow(0.97, 4), 1e-9);
  const auto b = seq::encode_kmer("TCGT").value();
  EXPECT_NEAR(sim::kmer_misread_prob(q, a, b, 4),
              std::pow(0.97, 3) * 0.01, 1e-9);
}

TEST(ReadSim, TruthMatchesGenome) {
  util::Rng rng(6);
  sim::GenomeSpec gspec;
  gspec.length = 20000;
  const auto genome = sim::simulate_genome(gspec, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.num_reads = 500;
  const auto result = sim::simulate_reads(genome.sequence, model, cfg, rng);
  ASSERT_EQ(result.reads.size(), 500u);
  ASSERT_TRUE(result.reads.has_truth());
  for (std::size_t i = 0; i < result.reads.size(); ++i) {
    const auto& t = result.reads.truth[i];
    std::string expect = genome.sequence.substr(t.genome_pos, 36);
    if (t.reverse_strand) expect = seq::reverse_complement(expect);
    EXPECT_EQ(t.true_bases, expect);
    EXPECT_EQ(result.reads.reads[i].bases.size(), 36u);
    EXPECT_EQ(result.reads.reads[i].quality.size(), 36u);
  }
}

TEST(ReadSim, RealizedErrorRateNearTarget) {
  util::Rng rng(7);
  const auto genome = sim::random_sequence(
      50000, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 30.0;
  const auto result = sim::simulate_reads(genome, model, cfg, rng);
  EXPECT_NEAR(result.realized_error_rate(), 0.01, 0.003);
}

TEST(ReadSim, ErrorsClusterAtLowQuality) {
  util::Rng rng(8);
  const auto genome =
      sim::random_sequence(50000, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto model = sim::ErrorModel::illumina(50, 0.02);
  sim::ReadSimConfig cfg;
  cfg.read_length = 50;
  cfg.coverage = 20.0;
  const auto result = sim::simulate_reads(genome, model, cfg, rng);
  double err_q_sum = 0.0, ok_q_sum = 0.0;
  std::uint64_t err_n = 0, ok_n = 0;
  for (std::size_t i = 0; i < result.reads.size(); ++i) {
    const auto& r = result.reads.reads[i];
    const auto& t = result.reads.truth[i];
    for (std::size_t p = 0; p < r.bases.size(); ++p) {
      if (r.bases[p] != t.true_bases[p]) {
        err_q_sum += r.quality[p];
        ++err_n;
      } else {
        ok_q_sum += r.quality[p];
        ++ok_n;
      }
    }
  }
  ASSERT_GT(err_n, 100u);
  EXPECT_LT(err_q_sum / err_n + 3.0, ok_q_sum / ok_n);
}

TEST(ReadSim, AmbiguousInjection) {
  util::Rng rng(9);
  const auto genome =
      sim::random_sequence(30000, {0.25, 0.25, 0.25, 0.25}, rng);
  const auto model = sim::ErrorModel::illumina(50, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 50;
  cfg.coverage = 10.0;
  cfg.ambiguous_rate = 0.002;
  const auto result = sim::simulate_reads(genome, model, cfg, rng);
  EXPECT_GT(result.ambiguous_bases, 0u);
  std::uint64_t n_count = 0;
  for (const auto& r : result.reads.reads) {
    n_count += static_cast<std::uint64_t>(
        std::count(r.bases.begin(), r.bases.end(), 'N'));
  }
  EXPECT_EQ(n_count, result.ambiguous_bases);
}

TEST(Datasets, Chapter2SpecsInstantiate) {
  const auto specs = sim::chapter2_specs(0.2);
  ASSERT_EQ(specs.size(), 6u);
  const auto d = sim::make_dataset(specs[1], 99);
  EXPECT_EQ(d.spec.name, "D2");
  EXPECT_GT(d.sim.reads.size(), 1000u);
  EXPECT_NEAR(d.sim.realized_error_rate(), 0.006, 0.004);
}

TEST(Datasets, Chapter3RepeatFractions) {
  const auto specs = sim::chapter3_specs(0.5);
  ASSERT_EQ(specs.size(), 6u);
  const auto d1 = sim::make_dataset(specs[0], 1);
  const auto d3 = sim::make_dataset(specs[2], 1);
  EXPECT_NEAR(d1.genome.repeat_fraction, 0.2, 0.03);
  EXPECT_NEAR(d3.genome.repeat_fraction, 0.8, 0.03);
}

TEST(Metagenome, TaxonomyShape) {
  util::Rng rng(10);
  sim::TaxonomySpec spec;
  spec.branching = {3, 4, 5};
  spec.divergence = {0.10, 0.05, 0.02};
  const auto tax = sim::simulate_taxonomy(spec, rng);
  EXPECT_EQ(tax.num_species(), 60u);
  EXPECT_EQ(tax.taxa_at_rank(0), 1u);
  EXPECT_EQ(tax.taxa_at_rank(1), 3u);
  EXPECT_EQ(tax.taxa_at_rank(2), 12u);
  EXPECT_EQ(tax.taxa_at_rank(3), 60u);
  // Ancestors are consistent: species 59 under the last genus/phylum.
  EXPECT_EQ(tax.ancestor_at_rank(59, 2), 11u);
  EXPECT_EQ(tax.ancestor_at_rank(59, 1), 2u);
  EXPECT_EQ(tax.ancestor_at_rank(0, 1), 0u);
  double total = 0.0;
  for (double a : tax.abundances) total += a;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Metagenome, WithinSpeciesMoreSimilarThanAcross) {
  util::Rng rng(11);
  sim::TaxonomySpec spec;
  const auto tax = sim::simulate_taxonomy(spec, rng);
  // Same-genus species should agree far more than cross-phylum species.
  const auto& s0 = tax.species_sequences[0];
  const auto& s1 = tax.species_sequences[1];   // same genus as s0
  const auto& sx = tax.species_sequences.back();  // different phylum
  const double same =
      1.0 - static_cast<double>(seq::hamming_distance(s0, s1)) / s0.size();
  const double cross =
      1.0 - static_cast<double>(seq::hamming_distance(s0, sx)) / s0.size();
  EXPECT_GT(same, cross + 0.05);
}

TEST(Metagenome, ReadsCarrySpeciesTruth) {
  util::Rng rng(12);
  sim::TaxonomySpec tspec;
  const auto tax = sim::simulate_taxonomy(tspec, rng);
  sim::MetagenomeReadConfig cfg;
  cfg.num_reads = 1000;
  const auto sample = sim::simulate_metagenome_reads(tax, cfg, rng);
  ASSERT_EQ(sample.reads.size(), 1000u);
  ASSERT_EQ(sample.species_of.size(), 1000u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_LT(sample.species_of[i], tax.num_species());
    EXPECT_GE(sample.reads.reads[i].bases.size(), cfg.min_length);
  }
  // Mean length near 400.
  double mean = 0.0;
  for (const auto& r : sample.reads.reads) {
    mean += static_cast<double>(r.bases.size()) / 1000.0;
  }
  EXPECT_NEAR(mean, 400.0, 25.0);
}

}  // namespace
