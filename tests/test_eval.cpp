#include <gtest/gtest.h>

#include "eval/ari.hpp"
#include "eval/correction_metrics.hpp"
#include "eval/kmer_classification.hpp"

namespace {

using namespace ngs;

TEST(CorrectionMetrics, ClassifiesAllOutcomes) {
  //            original  corrected truth
  // pos 0:     A         A         A      -> TN
  // pos 1:     C         G         C      -> FP
  // pos 2:     G         T         T      -> TP
  // pos 3:     T         T         A      -> FN
  // pos 4:     A         C         G      -> FN + wrong_target
  const auto c = eval::evaluate_read("ACGTA", "AGTTC", "ACTAG");
  EXPECT_EQ(c.tn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fn, 2u);
  EXPECT_EQ(c.wrong_target, 1u);
  EXPECT_DOUBLE_EQ(c.sensitivity(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.gain(), 0.0);  // (1 - 1) / 3
  EXPECT_DOUBLE_EQ(c.eba(), 0.5);
}

TEST(CorrectionMetrics, PerfectCorrectionGivesUnitGain) {
  const auto c = eval::evaluate_read("AAGT", "ACGT", "ACGT");
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 0u);
  EXPECT_DOUBLE_EQ(c.gain(), 1.0);
  EXPECT_DOUBLE_EQ(c.specificity(), 1.0);
}

TEST(CorrectionMetrics, NegativeGainWhenCorruptingData) {
  // No true errors; corrector damages two bases.
  const auto c = eval::evaluate_read("ACGTACGT", "TCGTACGA", "ACGTACGT");
  EXPECT_EQ(c.fp, 2u);
  EXPECT_EQ(c.tp, 0u);
  EXPECT_LE(c.gain(), 0.0);
}

TEST(CorrectionMetrics, NBasesCountAsErrors) {
  // N in original; corrected to true base -> TP.
  const auto good = eval::evaluate_read("ANGT", "ACGT", "ACGT");
  EXPECT_EQ(good.tp, 1u);
  // N left alone -> FN.
  const auto bad = eval::evaluate_read("ANGT", "ANGT", "ACGT");
  EXPECT_EQ(bad.fn, 1u);
}

TEST(CorrectionMetrics, ReadSetAggregation) {
  seq::ReadSet set;
  set.reads.push_back({"a", "AAAA", {}});
  set.reads.push_back({"b", "CCCC", {}});
  set.truth.push_back({0, false, "AAAT"});
  set.truth.push_back({0, false, "CCCC"});
  std::vector<seq::Read> corrected = {{"a", "AAAT", {}}, {"b", "CCCC", {}}};
  const auto c = eval::evaluate_correction(set, corrected);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.tn, 7u);
  EXPECT_THROW(eval::evaluate_correction(set, {}), std::invalid_argument);
}

TEST(CorrectionMetrics, AmbiguousAccuracy) {
  seq::ReadSet set;
  set.reads.push_back({"a", "ANNA", {}});
  set.truth.push_back({0, false, "ACGA"});
  std::vector<seq::Read> corrected = {{"a", "ACTA", {}}};
  const auto stats = eval::evaluate_ambiguous(set, corrected);
  EXPECT_EQ(stats.total_n, 2u);
  EXPECT_EQ(stats.resolved_correctly, 1u);
  EXPECT_DOUBLE_EQ(stats.accuracy(), 0.5);
}

TEST(KmerClassification, SweepCountsFpFn) {
  // scores: valid kmers {5, 10}, invalid {1, 2}.
  const std::vector<double> scores{5, 10, 1, 2};
  const std::vector<bool> truth{true, true, false, false};
  const auto sweep =
      eval::sweep_thresholds(scores, truth, {0.0, 1.5, 3.0, 6.0, 20.0});
  // threshold 0: nothing classified erroneous -> FN = 2, FP = 0.
  EXPECT_EQ(sweep[0].fp, 0u);
  EXPECT_EQ(sweep[0].fn, 2u);
  // threshold 3: invalid below, valid above -> perfect.
  EXPECT_EQ(sweep[2].wrong(), 0u);
  // threshold 20: everything below -> FP = 2, FN = 0.
  EXPECT_EQ(sweep[4].fp, 2u);
  EXPECT_EQ(sweep[4].fn, 0u);
  EXPECT_EQ(eval::best_point(sweep).wrong(), 0u);
  EXPECT_DOUBLE_EQ(eval::best_point(sweep).threshold, 3.0);
}

TEST(KmerClassification, GenomeTruth) {
  const auto genome_spec = kspec::KSpectrum::from_codes(
      {seq::encode_kmer("ACGT").value()}, 4);
  const auto read_spec = kspec::KSpectrum::from_codes(
      {seq::encode_kmer("ACGT").value(), seq::encode_kmer("TTTT").value()},
      4);
  const auto truth = eval::genome_truth(read_spec, genome_spec);
  ASSERT_EQ(truth.size(), 2u);
  EXPECT_TRUE(truth[read_spec.index_of(seq::encode_kmer("ACGT").value())]);
  EXPECT_FALSE(truth[read_spec.index_of(seq::encode_kmer("TTTT").value())]);
}

TEST(Ari, IdenticalClusteringsScoreOne) {
  const std::vector<std::uint32_t> u{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(eval::adjusted_rand_index(u, u).ari, 1.0);
  // Label permutation does not matter.
  const std::vector<std::uint32_t> v{5, 5, 9, 9, 7, 7};
  EXPECT_DOUBLE_EQ(eval::adjusted_rand_index(u, v).ari, 1.0);
}

TEST(Ari, IndependentClusteringsScoreNearZero) {
  // Crossed design: each cluster of U is split evenly among clusters of V.
  std::vector<std::uint32_t> u, v;
  for (std::uint32_t i = 0; i < 400; ++i) {
    u.push_back(i % 2);
    v.push_back((i / 2) % 2);
  }
  EXPECT_NEAR(eval::adjusted_rand_index(u, v).ari, 0.0, 0.02);
}

TEST(Ari, PartialAgreementBetweenZeroAndOne) {
  std::vector<std::uint32_t> u, v;
  for (std::uint32_t i = 0; i < 300; ++i) {
    u.push_back(i % 3);
    v.push_back(i % 3 == 2 && i % 2 == 0 ? 1u : i % 3);  // corrupt some
  }
  const double ari = eval::adjusted_rand_index(u, v).ari;
  EXPECT_GT(ari, 0.3);
  EXPECT_LT(ari, 1.0);
}

TEST(Ari, RejectsBadInput) {
  EXPECT_THROW(eval::adjusted_rand_index({}, {}), std::invalid_argument);
  EXPECT_THROW(eval::adjusted_rand_index({1, 2}, {1}), std::invalid_argument);
}

}  // namespace
