#include <gtest/gtest.h>

#include "mapper/mismatch_mapper.hpp"
#include "mapper/packed_sequence.hpp"
#include "seq/alphabet.hpp"
#include "sim/genome.hpp"
#include "sim/read_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace ngs;

TEST(PackedSequence, BaseAccess) {
  const std::string s = "ACGTACGTTTGGCCAA";
  mapper::PackedSequence p(s);
  ASSERT_EQ(p.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(p.base(i), seq::base_to_code(s[i]));
  }
}

TEST(PackedSequence, MismatchCounting) {
  std::string genome;
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    genome.push_back(seq::code_to_base(static_cast<std::uint8_t>(rng.below(4))));
  }
  mapper::PackedSequence p(genome);
  // Exact window: zero mismatches.
  for (std::size_t pos : {0ul, 17ul, 63ul, 64ul, 65ul, 150ul}) {
    const std::string window = genome.substr(pos, 50);
    const auto words = mapper::PackedSequence::pack_words(window);
    EXPECT_EQ(p.mismatches(pos, words, 50, 50), 0) << pos;
  }
  // Mutate three bases; count must be exactly 3.
  std::string window = genome.substr(40, 50);
  for (std::size_t i : {0ul, 31ul, 49ul}) {
    window[i] = seq::complement_base(window[i]);
  }
  const auto words = mapper::PackedSequence::pack_words(window);
  EXPECT_EQ(p.mismatches(40, words, 50, 50), 3);
  // Early exit cap.
  EXPECT_GT(p.mismatches(40, words, 50, 0), 0);
}

class MapperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(42);
    sim::GenomeSpec spec;
    spec.length = 30000;
    genome_ = sim::simulate_genome(spec, rng).sequence;
  }
  std::string genome_;
};

TEST_F(MapperTest, ExactReadsMapUniquely) {
  mapper::MismatchMapper m(genome_, 10);
  util::Rng rng(1);
  for (int t = 0; t < 200; ++t) {
    const std::size_t pos = rng.below(genome_.size() - 36);
    const std::string read = genome_.substr(pos, 36);
    const auto result = m.classify(read, 2);
    ASSERT_NE(result.cls, mapper::MapClass::kUnmapped);
    if (result.cls == mapper::MapClass::kUnique) {
      EXPECT_EQ(result.best.pos, pos);
      EXPECT_FALSE(result.best.reverse);
      EXPECT_EQ(result.best.mismatches, 0);
    }
  }
}

TEST_F(MapperTest, ReverseStrandReadsMap) {
  mapper::MismatchMapper m(genome_, 10);
  const std::size_t pos = 1234;
  const std::string read =
      seq::reverse_complement(genome_.substr(pos, 40));
  const auto result = m.classify(read, 2);
  ASSERT_EQ(result.cls, mapper::MapClass::kUnique);
  EXPECT_TRUE(result.best.reverse);
  EXPECT_EQ(result.best.pos, pos);
}

TEST_F(MapperTest, MismatchesWithinBudgetMap) {
  mapper::MismatchMapper m(
      genome_, mapper::MismatchMapper::seed_length_for(36, 3));
  const std::size_t pos = 5000;
  std::string read = genome_.substr(pos, 36);
  read[2] = seq::complement_base(read[2]);
  read[20] = seq::complement_base(read[20]);
  read[33] = seq::complement_base(read[33]);
  const auto result = m.classify(read, 3);
  ASSERT_EQ(result.cls, mapper::MapClass::kUnique);
  EXPECT_EQ(result.best.pos, pos);
  EXPECT_EQ(result.best.mismatches, 3);
  // Beyond budget: unmapped.
  read[10] = seq::complement_base(read[10]);
  EXPECT_EQ(m.classify(read, 3).cls, mapper::MapClass::kUnmapped);
}

TEST_F(MapperTest, RepeatReadsAreAmbiguous) {
  // Plant an exact duplicate region.
  std::string genome = genome_;
  genome.replace(20000, 500, genome.substr(3000, 500));
  mapper::MismatchMapper m(genome, 12);
  const std::string read = genome.substr(3100, 36);
  EXPECT_EQ(m.classify(read, 2).cls, mapper::MapClass::kAmbiguous);
}

TEST_F(MapperTest, MapReadSetStats) {
  util::Rng rng(7);
  const auto model = sim::ErrorModel::illumina(36, 0.01);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.num_reads = 500;
  const auto simulated = sim::simulate_reads(genome_, model, cfg, rng);
  mapper::MismatchMapper m(genome_, 9);
  const auto stats = mapper::map_read_set(m, simulated.reads, 5);
  EXPECT_EQ(stats.total, 500u);
  // Nearly all low-error reads map, overwhelmingly uniquely.
  EXPECT_GT(static_cast<double>(stats.unique) / 500.0, 0.9);
  EXPECT_LT(stats.unmapped, 25u);
}

TEST_F(MapperTest, ErrorModelEstimationRecoversRampShape) {
  util::Rng rng(8);
  const auto model = sim::ErrorModel::illumina(36, 0.02);
  sim::ReadSimConfig cfg;
  cfg.read_length = 36;
  cfg.coverage = 25.0;
  const auto simulated = sim::simulate_reads(genome_, model, cfg, rng);
  mapper::MismatchMapper m(genome_, 9);
  const auto estimated =
      mapper::estimate_error_model(m, genome_, simulated.reads, 5);
  ASSERT_EQ(estimated.read_length(), 36u);
  // Average rate near the simulated truth, and ramp shape preserved.
  EXPECT_NEAR(estimated.average_error_rate(), 0.02, 0.008);
  double head = 0.0, tail = 0.0;
  for (int a = 0; a < 4; ++a) {
    head += estimated.error_prob(1, static_cast<std::uint8_t>(a)) / 4;
    tail += estimated.error_prob(34, static_cast<std::uint8_t>(a)) / 4;
  }
  EXPECT_GT(tail, head * 1.5);
}

TEST(MapperUnit, SeedLengthFor) {
  EXPECT_EQ(mapper::MismatchMapper::seed_length_for(36, 5), 6);
  EXPECT_EQ(mapper::MismatchMapper::seed_length_for(101, 10), 9);
}

}  // namespace
