#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <sstream>
#include <thread>

#include "util/flat_counter.hpp"
#include "util/memory.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using ngs::util::Histogram;
using ngs::util::Rng;

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(1), 0u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  ngs::util::RunningMoments m;
  for (int i = 0; i < 200000; ++i) m.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(m.mean(), 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(m.variance()), 2.0, 0.05);
}

TEST(Rng, GammaMoments) {
  Rng rng(13);
  ngs::util::RunningMoments m;
  const double shape = 3.0, scale = 2.0;
  for (int i = 0; i < 200000; ++i) m.add(rng.gamma(shape, scale));
  EXPECT_NEAR(m.mean(), shape * scale, 0.1);
  EXPECT_NEAR(m.variance(), shape * scale * scale, 0.4);
}

TEST(Rng, PoissonMean) {
  Rng rng(17);
  ngs::util::RunningMoments small, large;
  for (int i = 0; i < 100000; ++i) {
    small.add(static_cast<double>(rng.poisson(3.5)));
    large.add(static_cast<double>(rng.poisson(80.0)));
  }
  EXPECT_NEAR(small.mean(), 3.5, 0.1);
  EXPECT_NEAR(large.mean(), 80.0, 0.5);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(23);
  const std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::array<int, 4> counts{};
  for (int i = 0; i < 100000; ++i) {
    counts[rng.categorical(w)]++;
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 100000.0, 0.6, 0.02);
}

TEST(Histogram, QuantileAndMean) {
  Histogram h;
  for (int v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.quantile(0.5), 50);
  EXPECT_EQ(h.quantile(1.0), 100);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
  EXPECT_NEAR(h.fraction_below(51), 0.5, 1e-9);
}

TEST(Histogram, WeightedCounts) {
  Histogram h;
  h.add(1, 90);
  h.add(10, 10);
  EXPECT_EQ(h.quantile(0.5), 1);
  EXPECT_EQ(h.quantile(0.95), 10);
}

TEST(Stats, DigammaMatchesKnownValues) {
  // psi(1) = -gamma_E, psi(2) = 1 - gamma_E, psi(0.5) = -gamma_E - 2 ln 2.
  constexpr double kEuler = 0.5772156649015329;
  EXPECT_NEAR(ngs::util::digamma(1.0), -kEuler, 1e-9);
  EXPECT_NEAR(ngs::util::digamma(2.0), 1.0 - kEuler, 1e-9);
  EXPECT_NEAR(ngs::util::digamma(0.5), -kEuler - 2.0 * std::log(2.0), 1e-9);
}

TEST(Stats, DigammaIsDerivativeOfLogGamma) {
  for (double x : {0.3, 1.7, 4.2, 25.0}) {
    const double h = 1e-6;
    const double numeric =
        (ngs::util::log_gamma(x + h) - ngs::util::log_gamma(x - h)) / (2 * h);
    EXPECT_NEAR(ngs::util::digamma(x), numeric, 1e-5) << "x=" << x;
  }
}

TEST(Stats, LogSumExp) {
  EXPECT_NEAR(ngs::util::log_sum_exp({std::log(1.0), std::log(3.0)}),
              std::log(4.0), 1e-12);
  EXPECT_NEAR(ngs::util::log_sum_exp({-1000.0, -1000.0}),
              -1000.0 + std::log(2.0), 1e-9);
}

TEST(Stats, Binomial) {
  EXPECT_DOUBLE_EQ(ngs::util::binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(ngs::util::binomial(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(ngs::util::binomial(3, 5), 0.0);
}

TEST(Table, RendersAlignedRows) {
  ngs::util::Table t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22,222"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22,222"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(ngs::util::Table::num(0), "0");
  EXPECT_EQ(ngs::util::Table::num(999), "999");
  EXPECT_EQ(ngs::util::Table::num(1000), "1,000");
  EXPECT_EQ(ngs::util::Table::num(1234567), "1,234,567");
  EXPECT_EQ(ngs::util::Table::percent(0.123456, 2), "12.35%");
}

TEST(ThreadPool, ParallelForCoversRange) {
  ngs::util::ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ngs::util::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ngs::util::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, BlockedCoversRangeInContiguousBlocks) {
  ngs::util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(777);
  pool.parallel_for_blocked(0, hits.size(),
                            [&](std::size_t lo, std::size_t hi) {
                              ASSERT_LT(lo, hi);
                              for (std::size_t i = lo; i < hi; ++i)
                                hits[i].fetch_add(1);
                            });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, BlockedPropagatesExceptions) {
  ngs::util::ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_blocked(0, 100,
                                [](std::size_t lo, std::size_t) {
                                  if (lo > 0) throw std::runtime_error("boom");
                                }),
      std::runtime_error);
}

TEST(ThreadPool, BlockedEmptyRangeIsNoop) {
  ngs::util::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for_blocked(9, 9, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  pool.parallel_for_blocked(9, 3, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SubmitRunsFifoOnSingleWorker) {
  // With one worker the deque is drained front-to-back, so submission
  // order is execution order.
  ngs::util::ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, SubmitUnderContentionRunsEachTaskOnce) {
  // Several threads race to submit; every task must run exactly once and
  // every future must become ready.
  ngs::util::ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  constexpr int kPerSubmitter = 50;
  std::vector<std::atomic<int>> counts(kSubmitters * kPerSubmitter);
  std::mutex futures_mutex;
  std::vector<std::future<void>> futures;
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        auto f = pool.submit(
            [&counts, idx = s * kPerSubmitter + i] { counts[idx].fetch_add(1); });
        std::lock_guard<std::mutex> lock(futures_mutex);
        futures.push_back(std::move(f));
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (auto& f : futures) f.get();
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(StageTimes, AccumulatesInOrder) {
  ngs::util::StageTimes times;
  times.add("sketch", 1.0);
  times.add("validate", 2.0);
  times.add("sketch", 0.5);
  EXPECT_DOUBLE_EQ(times.get("sketch"), 1.5);
  EXPECT_DOUBLE_EQ(times.total(), 3.5);
  ASSERT_EQ(times.entries().size(), 2u);
  EXPECT_EQ(times.entries()[0].first, "sketch");
}

TEST(Memory, ReportsPositiveRss) {
  EXPECT_GT(ngs::util::peak_rss_bytes(), 0u);
  EXPECT_GT(ngs::util::current_rss_bytes(), 0u);
}

TEST(FlatCounter, CountsAndSentinel) {
  ngs::util::FlatCounter c;
  c.add(5);
  c.add(5, 3);
  c.add(~std::uint64_t{0});  // the empty-slot sentinel key
  EXPECT_EQ(c.count(5), 4u);
  EXPECT_EQ(c.count(6), 0u);
  EXPECT_EQ(c.count(~std::uint64_t{0}), 1u);
  EXPECT_EQ(c.distinct(), 2u);
}

TEST(FlatCounter, UpdatesToExistingKeysNeverRehash) {
  // expected_keys=8 -> 16 slots; 8 inserts sit exactly at the load-factor
  // boundary, where the old pre-check grew the table on the next add()
  // even when that add only bumped an existing key.
  ngs::util::FlatCounter c(8);
  ASSERT_EQ(c.capacity(), 16u);
  for (std::uint64_t key = 0; key < 8; ++key) c.add(key);
  ASSERT_EQ(c.capacity(), 16u);
  for (int i = 0; i < 100; ++i) c.add(3);
  EXPECT_EQ(c.capacity(), 16u) << "update to an existing key rehashed";
  EXPECT_EQ(c.count(3), 101u);
  // A genuinely new key at the boundary still grows.
  c.add(999);
  EXPECT_EQ(c.capacity(), 32u);
  for (std::uint64_t key = 0; key < 8; ++key) EXPECT_EQ(c.count(key), key == 3 ? 101u : 1u);
  EXPECT_EQ(c.count(999), 1u);
}

TEST(FlatCounter, ConstLookupOnColdKeys) {
  const ngs::util::FlatCounter c(4);
  EXPECT_EQ(c.count(123), 0u);
  EXPECT_EQ(c.distinct(), 0u);
}

}  // namespace
